//! The symbolic miss-equation tier (DESIGN.md §13).
//!
//! [`FindMisses`](crate::FindMisses) answers by *enumeration*: every
//! iteration point of every reference walks the cold/replacement equations.
//! This module instead solves whole **rows** (maximal innermost-index runs
//! at a fixed outer prefix) in closed form, so the per-reference cost is
//! `O(rows × vectors)` instead of `O(points × walk)` — independent of the
//! innermost trip count. The result is a piecewise count: for each row the
//! verdict pattern is a function of *segments* (pieces cut by vector
//! applicability intervals and guard thresholds) crossed with *residue
//! classes* of the innermost index modulo the line period
//! `P = L / gcd(L, stride)` — a quasi-polynomial in the loop bounds, in the
//! sense of the fully-symbolic locality analyses cited in PAPERS.md.
//!
//! # Closure conditions
//!
//! A `(segment × residue)` cell is decided by evaluating the classifier's
//! own devices **once** at a representative point, which is exact when the
//! verdict is provably constant over the cell:
//!
//! * **cold / same-line screens** — producer applicability reduces to an
//!   interval (segments are cut at its ends), and for an equal-stride
//!   producer the line match depends only on `(base + stride·v) mod L`,
//!   constant per residue class. A producer with a *different* innermost
//!   stride is handled only when interval arithmetic proves its address gap
//!   stays `≥ L` (never same line) across the segment.
//! * **replacement** — the row-uniform contention bound (one computation
//!   per `(row, vector)`, valid for every point of the row), or the exact
//!   intra-row window evaluation. Re-evaluating a window at `v + P` shifts
//!   every access address by the same multiple of `L` **iff all leaf
//!   references share the consumer's innermost stride**, so the verdict is
//!   residue-periodic exactly in that case; guard thresholds crossing the
//!   window are cut out as short per-point bands first.
//!
//! Anything outside these conditions degrades — first to per-point exact
//! evaluation when the segment is short, then to a whole-reference
//! **fallback**: the reference keeps the enumerated path (prepass + walk).
//! Wherever the tier closes, the per-reference totals **equal** the
//! classifier's tallies, so reports stay byte-identical with the tier on or
//! off; that is asserted by differential tests and by `bench_symbolic`.

use crate::cancel::{CancelToken, Cancelled};
use crate::classify::Classifier;
use crate::prepass::{
    build_vec_row, leaf_row_stmts, vec_statics, window_eval, RowStmt, VecRow, VecStatic, COLD, HIT,
    REPL, WINDOW_BUDGET,
};
use cme_cache::CacheConfig;
use cme_ir::RefId;
use cme_poly::vector::{div_ceil, div_floor, gcd};
use cme_poly::{Affine, ConstraintKind, Space};

/// Evaluations between cancellation checks.
const CANCEL_GRAIN: u64 = 4096;

/// Segments up to this long are retried point-by-point when the
/// residue-class argument does not apply, before the whole reference falls
/// back to enumeration.
const SMALL_SEG: i64 = 128;

/// Closed-form per-reference totals: what `FindMisses` would tally by
/// enumerating every point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RefCounts {
    /// Cold (compulsory) misses.
    pub cold: u64,
    /// Replacement (capacity/conflict) misses.
    pub replacement: u64,
    /// Hits.
    pub hits: u64,
}

impl RefCounts {
    /// Total points counted.
    pub fn total(&self) -> u64 {
        self.cold + self.replacement + self.hits
    }
}

/// The symbolic outcome for one reference: closed-form counts, or a
/// fallback marker naming the first condition that failed to close.
#[derive(Debug, Clone)]
pub struct RefSymbolic {
    counts: Option<RefCounts>,
    reason: Option<&'static str>,
    rows: u64,
    total: u64,
}

impl RefSymbolic {
    fn fallback(reason: &'static str, rows: u64, total: u64) -> RefSymbolic {
        RefSymbolic {
            counts: None,
            reason: Some(reason),
            rows,
            total,
        }
    }

    /// The closed-form counts, if the reference closed.
    pub fn counts(&self) -> Option<RefCounts> {
        self.counts
    }

    /// Whether the reference closed (counts available).
    pub fn closed(&self) -> bool {
        self.counts.is_some()
    }

    /// Why the reference fell back to enumeration, if it did.
    pub fn fallback_reason(&self) -> Option<&'static str> {
        self.reason
    }

    /// Rows of the reference's iteration space examined.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Points in the reference's RIS.
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// The symbolic tier for a whole program: one [`RefSymbolic`] per
/// reference.
#[derive(Debug, Clone)]
pub struct Symbolic {
    per_ref: Vec<RefSymbolic>,
}

impl Symbolic {
    /// Runs [`analyze_reference`] for every reference of the classifier's
    /// program.
    pub fn build(cl: &Classifier<'_>, cancel: &CancelToken) -> Result<Symbolic, Cancelled> {
        let nrefs = cl.program().references().len();
        let mut per_ref = Vec::with_capacity(nrefs);
        for r in 0..nrefs {
            per_ref.push(analyze_reference(cl, r, cancel)?);
        }
        Ok(Symbolic { per_ref })
    }

    /// The outcome for one reference.
    pub fn reference(&self, r: RefId) -> &RefSymbolic {
        &self.per_ref[r]
    }

    /// Per-reference outcomes in reference order.
    pub fn references(&self) -> &[RefSymbolic] {
        &self.per_ref
    }

    /// References that closed.
    pub fn refs_closed(&self) -> usize {
        self.per_ref.iter().filter(|r| r.closed()).count()
    }

    /// All references.
    pub fn refs_total(&self) -> usize {
        self.per_ref.len()
    }

    /// Points answered in closed form.
    pub fn points_closed(&self) -> u64 {
        self.per_ref
            .iter()
            .filter(|r| r.closed())
            .map(|r| r.total)
            .sum()
    }

    /// Points across all RISs.
    pub fn points_total(&self) -> u64 {
        self.per_ref.iter().map(|r| r.total).sum()
    }
}

enum Stop {
    Cancelled,
    Fallback(&'static str),
}

/// Solves one reference's miss counts symbolically, or reports why it must
/// fall back to enumeration. Wherever `counts` is returned it equals the
/// exact classifier tally — the contract every caller relies on.
pub fn analyze_reference(
    cl: &Classifier<'_>,
    r: RefId,
    cancel: &CancelToken,
) -> Result<RefSymbolic, Cancelled> {
    if cancel.is_cancelled() {
        return Err(Cancelled { points_done: 0 });
    }
    let program = cl.program();
    let n = program.depth();
    let ris = program.ris(r);
    let total = ris.count();
    if total == 0 {
        return Ok(RefSymbolic {
            counts: Some(RefCounts::default()),
            reason: None,
            rows: 0,
            total,
        });
    }
    if n == 0 {
        return Ok(RefSymbolic::fallback("depth-0 program", 0, total));
    }
    let nprefix = n - 1;
    let plan = cl.plan(r);
    let caddr = program.addr_plan(r);
    let cstride = caddr.coeff(nprefix);
    let lbytes = cl.config().line_bytes() as i64;
    let period = if cstride == 0 {
        1
    } else {
        lbytes / gcd(lbytes, cstride.abs())
    };
    let statics = vec_statics(program, plan, n);
    let label = program
        .statement(program.reference(r).stmt)
        .label
        .as_slice();
    let row_stmts = leaf_row_stmts(program, label);
    let row_accesses: usize = row_stmts.iter().map(|s| s.refs.len()).sum::<usize>().max(1);
    // The residue-class window argument needs every access of the row to
    // shift by the same multiple of L under `v → v + P`: all leaf strides
    // must equal the consumer's.
    let leaf_uniform = row_stmts
        .iter()
        .all(|s| s.refs.iter().all(|&(_, p)| p.coeff(nprefix) == cstride));
    let dv_max = statics
        .iter()
        .filter(|vs| {
            vs.intra_row
                && vs.dv >= 0
                && (vs.dv as usize + 1).saturating_mul(row_accesses) <= WINDOW_BUDGET
        })
        .map(|vs| vs.dv)
        .max()
        .unwrap_or(0);
    // `≠` constraints are invisible to `interval()`; resolve them per level
    // once so row enumeration can subtract their holes.
    let ne_by_level: Vec<Vec<usize>> = (0..n)
        .map(|d| {
            ris.system()
                .constraints()
                .iter()
                .enumerate()
                .filter(|(_, c)| c.kind == ConstraintKind::Ne && c.expr.highest_var() == Some(d))
                .map(|(i, _)| i)
                .collect()
        })
        .collect();

    let mut solver = RefSolver {
        cl,
        config: *cl.config(),
        statics,
        row_stmts,
        row_accesses,
        consumer_rank: plan.consumer_rank,
        label,
        caddr,
        cstride,
        lbytes,
        period,
        k: cl.config().assoc() as usize,
        leaf_uniform,
        dv_max,
        n,
        nprefix,
        cancel,
        ne_by_level,
        vrows: Vec::new(),
        pprefix: vec![0; nprefix],
        idx: vec![0; n],
        lines: Vec::new(),
        from_buf: vec![0; 2 * n],
        to_buf: vec![0; 2 * n],
        cuts: Vec::new(),
        bands: Vec::new(),
        cbase: 0,
        row_lo: 0,
        row_hi: 0,
        cold: 0,
        repl: 0,
        hit: 0,
        rows: 0,
        evals: 0,
    };

    let mut prefix = Vec::with_capacity(nprefix);
    match solver.enumerate(ris, &mut prefix) {
        Ok(()) => {
            let counts = RefCounts {
                cold: solver.cold,
                replacement: solver.repl,
                hits: solver.hit,
            };
            if counts.total() != total {
                // Defensive: the segments must partition the RIS exactly.
                debug_assert_eq!(counts.total(), total, "symbolic partition mismatch ref {r}");
                return Ok(RefSymbolic::fallback(
                    "internal partition mismatch",
                    solver.rows,
                    total,
                ));
            }
            Ok(RefSymbolic {
                counts: Some(counts),
                reason: None,
                rows: solver.rows,
                total,
            })
        }
        Err(Stop::Cancelled) => Err(Cancelled { points_done: 0 }),
        Err(Stop::Fallback(reason)) => Ok(RefSymbolic::fallback(reason, solver.rows, total)),
    }
}

struct RefSolver<'a, 'p> {
    cl: &'a Classifier<'p>,
    config: CacheConfig,
    statics: Vec<VecStatic<'p>>,
    row_stmts: Vec<RowStmt<'p>>,
    row_accesses: usize,
    consumer_rank: usize,
    label: &'p [i64],
    caddr: &'p Affine,
    cstride: i64,
    lbytes: i64,
    period: i64,
    k: usize,
    leaf_uniform: bool,
    dv_max: i64,
    n: usize,
    nprefix: usize,
    cancel: &'a CancelToken,
    ne_by_level: Vec<Vec<usize>>,
    // Scratch, reused across rows.
    vrows: Vec<VecRow>,
    pprefix: Vec<i64>,
    idx: Vec<i64>,
    lines: Vec<i64>,
    from_buf: Vec<i64>,
    to_buf: Vec<i64>,
    cuts: Vec<i64>,
    bands: Vec<(i64, i64)>,
    // Current row.
    cbase: i64,
    row_lo: i64,
    row_hi: i64,
    // Accumulated counts.
    cold: u64,
    repl: u64,
    hit: u64,
    rows: u64,
    evals: u64,
}

impl RefSolver<'_, '_> {
    /// Recursive prefix descent, mirroring `cme_poly::count`'s walk: exact
    /// per-level intervals plus `≠` checks, with the innermost level solved
    /// per row instead of per point.
    fn enumerate(&mut self, space: &Space, prefix: &mut Vec<i64>) -> Result<(), Stop> {
        let d = prefix.len();
        if d == self.nprefix {
            return self.rows_at_prefix(space, prefix);
        }
        let Some((lo, hi)) = space.system().interval(prefix, d) else {
            return Ok(());
        };
        for v in lo..=hi {
            prefix.push(v);
            let ok = self.ne_by_level[d].iter().all(|&ci| {
                space.system().constraints()[ci]
                    .expr
                    .partial_eval_prefix(prefix)
                    .constant_term()
                    != 0
            });
            if ok {
                self.enumerate(space, prefix)?;
            }
            prefix.pop();
        }
        Ok(())
    }

    /// Splits the innermost interval at one prefix into maximal contiguous
    /// rows (`≠` holes cut) and solves each.
    fn rows_at_prefix(&mut self, space: &Space, prefix: &[i64]) -> Result<(), Stop> {
        let d = self.nprefix;
        let Some((lo, hi)) = space.system().interval(prefix, d) else {
            return Ok(());
        };
        if lo > hi {
            return Ok(());
        }
        let mut holes: Vec<i64> = Vec::new();
        for &ci in &self.ne_by_level[d] {
            let p = space.system().constraints()[ci]
                .expr
                .partial_eval_prefix(prefix);
            let a = p.coeff(0);
            let rest = p.constant_term();
            if a == 0 {
                if rest == 0 {
                    return Ok(()); // `0 ≠ 0`: no points at this prefix
                }
            } else if rest % a == 0 {
                holes.push(-rest / a);
            }
        }
        holes.sort_unstable();
        holes.dedup();
        let mut start = lo;
        for &h in &holes {
            if h < start || h > hi {
                continue;
            }
            if h > start {
                self.solve_row(prefix, start, h - 1)?;
            }
            start = h + 1;
        }
        if start <= hi {
            self.solve_row(prefix, start, hi)?;
        }
        Ok(())
    }

    /// Solves one row: cuts it into segments, decides each segment per
    /// residue class (or per point where the class argument fails), and
    /// accumulates the verdict counts.
    fn solve_row(&mut self, prefix: &[i64], lo: i64, hi: i64) -> Result<(), Stop> {
        self.rows += 1;
        self.bump_eval()?;
        let mut cbase = self.caddr.constant_term();
        for (d, &p) in prefix.iter().enumerate().take(self.nprefix) {
            cbase += self.caddr.coeff(d) * p;
        }
        self.cbase = cbase;
        self.row_lo = lo;
        self.row_hi = hi;
        self.idx[..self.nprefix].copy_from_slice(prefix);

        self.vrows.clear();
        for i in 0..self.statics.len() {
            let vr = build_vec_row(&self.statics[i], prefix, lo, hi, &mut self.pprefix);
            self.vrows.push(vr);
        }

        // Segment cuts: vector applicability edges, `≠` holes of producers
        // (isolated as width-1 per-point bands) and guard thresholds whose
        // crossing makes window contents vary point-to-point.
        self.cuts.clear();
        self.bands.clear();
        self.cuts.push(lo);
        self.cuts.push(hi + 1);
        for vr in &self.vrows {
            if vr.excluded {
                continue;
            }
            if vr.alo > lo && vr.alo <= hi {
                self.cuts.push(vr.alo);
            }
            if vr.ahi >= lo && vr.ahi < hi {
                self.cuts.push(vr.ahi + 1);
            }
            for &h in &vr.ne {
                if h >= lo && h <= hi {
                    self.cuts.push(h);
                    self.cuts.push(h + 1);
                    self.bands.push((h, h));
                }
            }
        }
        for si in 0..self.row_stmts.len() {
            for gi in 0..self.row_stmts[si].guard.len() {
                let c = &self.row_stmts[si].guard[gi];
                let a = c.expr.coeff(self.nprefix);
                if a == 0 {
                    continue; // row-uniform truth: no threshold inside the row
                }
                let mut rest = c.expr.constant_term();
                for (d, &p) in prefix.iter().enumerate().take(self.nprefix) {
                    rest += c.expr.coeff(d) * p;
                }
                // Truth regions over `v`: all-false / mixed-window band /
                // all-true (order depending on sign). Cuts isolate the
                // regions even when the band is empty (`dv_max = 0` still
                // flips single-point windows at the threshold).
                let (cut_a, cut_b, band) = match c.kind {
                    ConstraintKind::Ge => {
                        if a > 0 {
                            // true ⇔ w ≥ t: windows mix while t ∈ (v−dv, v].
                            let t = div_ceil(-rest, a);
                            (t, t + self.dv_max, (t, t + self.dv_max - 1))
                        } else {
                            // true ⇔ w ≤ t.
                            let t = div_floor(-rest, a);
                            (t + 1, t + self.dv_max + 1, (t + 1, t + self.dv_max))
                        }
                    }
                    ConstraintKind::Eq | ConstraintKind::Ne => {
                        if rest % a == 0 {
                            let w0 = -rest / a;
                            (w0, w0 + self.dv_max + 1, (w0, w0 + self.dv_max))
                        } else {
                            continue; // never crosses an integer point
                        }
                    }
                };
                for cut in [cut_a, cut_b] {
                    if cut > lo && cut <= hi {
                        self.cuts.push(cut);
                    }
                }
                let (blo, bhi) = (band.0.max(lo), band.1.min(hi));
                if blo <= bhi {
                    self.bands.push((blo, bhi));
                }
            }
        }
        self.cuts.sort_unstable();
        self.cuts.dedup();

        let ncuts = self.cuts.len();
        for w in 0..ncuts - 1 {
            let (slo, shi) = (self.cuts[w], self.cuts[w + 1] - 1);
            let per_point = self.bands.iter().any(|&(a, b)| a <= shi && slo <= b);
            if per_point {
                self.solve_seg_per_point(slo, shi)?;
            } else {
                match self.solve_seg_per_class(slo, shi) {
                    Ok((c, rp, h)) => {
                        self.cold += c;
                        self.repl += rp;
                        self.hit += h;
                    }
                    Err(Stop::Fallback(reason)) if shi - slo < SMALL_SEG => {
                        // The class argument failed but the segment is
                        // short: exact per-point evaluation instead.
                        let _ = reason;
                        self.solve_seg_per_point(slo, shi)?;
                    }
                    Err(stop) => return Err(stop),
                }
            }
        }
        Ok(())
    }

    /// Decides a segment once per residue class of `v mod P`, multiplying
    /// by the class population. Counts are returned (not committed) so a
    /// failed segment can be retried per point without double counting.
    fn solve_seg_per_class(&mut self, slo: i64, shi: i64) -> Result<(u64, u64, u64), Stop> {
        let (mut cold, mut repl, mut hit) = (0u64, 0u64, 0u64);
        let reps = self.period.min(shi - slo + 1);
        for j in 0..reps {
            let v = slo + j;
            let members = ((shi - v) / self.period + 1) as u64;
            match self.eval_point(v, Some((slo, shi)))? {
                COLD => cold += members,
                REPL => repl += members,
                HIT => hit += members,
                _ => unreachable!("eval_point returns a definite verdict"),
            }
        }
        Ok((cold, repl, hit))
    }

    /// Exact per-point evaluation for short segments and bands.
    fn solve_seg_per_point(&mut self, slo: i64, shi: i64) -> Result<(), Stop> {
        for v in slo..=shi {
            match self.eval_point(v, None)? {
                COLD => self.cold += 1,
                REPL => self.repl += 1,
                HIT => self.hit += 1,
                _ => unreachable!("eval_point returns a definite verdict"),
            }
        }
        Ok(())
    }

    fn bump_eval(&mut self) -> Result<(), Stop> {
        self.evals += 1;
        if self.evals.is_multiple_of(CANCEL_GRAIN) && self.cancel.is_cancelled() {
            return Err(Stop::Cancelled);
        }
        Ok(())
    }

    /// First-match vector scan at one point, mirroring the classifier: the
    /// first applicable same-line vector decides, via the row-uniform bound
    /// or the exact window; no vector ⇒ cold.
    ///
    /// With `seg = Some(..)` the verdict must be constant over the whole
    /// residue class within the segment (the caller multiplies it out), so
    /// every consulted device must be residue-stable; any failure is a
    /// `Fallback` stop. With `seg = None` the evaluation is exact for the
    /// single point `v` and only genuinely undecidable devices stop.
    fn eval_point(&mut self, v: i64, seg: Option<(i64, i64)>) -> Result<u8, Stop> {
        self.bump_eval()?;
        let line_c = self.config.mem_line(self.cbase + self.cstride * v);
        for vi in 0..self.vrows.len() {
            {
                let vr = &self.vrows[vi];
                if vr.excluded || v < vr.alo || v > vr.ahi {
                    continue;
                }
                if !vr.ne.is_empty() && vr.ne.contains(&v) {
                    continue;
                }
                if let Some((slo, shi)) = seg {
                    if vr.pstride != self.cstride {
                        // Cross-stride producer: the line match is not a
                        // function of the residue class. Usable only when
                        // the address gap provably clears a full line over
                        // the segment (then the vector never applies).
                        let a = vr.alo.max(slo);
                        let b = vr.ahi.min(shi);
                        let d0 = (vr.pbase - self.cbase) + (vr.pstride - self.cstride) * a;
                        let d1 = (vr.pbase - self.cbase) + (vr.pstride - self.cstride) * b;
                        let (dmin, dmax) = if d0 <= d1 { (d0, d1) } else { (d1, d0) };
                        if dmin >= self.lbytes || dmax <= -self.lbytes {
                            continue;
                        }
                        return Err(Stop::Fallback("cross-stride same-line overlap"));
                    }
                }
                if self.config.mem_line(vr.pbase + vr.pstride * v) != line_c {
                    continue;
                }
            }
            // This vector decides the point (and, per the screens above,
            // the whole class when `seg` is set).
            if self.vrows[vi].bound.is_none() {
                let vs = &self.statics[vi];
                for d in 0..self.n {
                    self.to_buf[2 * d] = self.label[d];
                    self.to_buf[2 * d + 1] = if d < self.nprefix {
                        self.idx[d]
                    } else {
                        self.row_hi
                    };
                }
                for pos in 0..2 * self.n {
                    self.from_buf[pos] = self.to_buf[pos] - vs.vector[pos];
                }
                self.from_buf[2 * self.n - 1] = self.row_lo - vs.dv;
                let b = self.cl.row_contention_hit(&self.from_buf, &self.to_buf);
                self.vrows[vi].bound = Some(b);
            }
            if self.vrows[vi].bound == Some(true) {
                return Ok(HIT);
            }
            let vs = &self.statics[vi];
            let window_ok = vs.intra_row
                && vs.dv >= 0
                && (vs.dv as usize + 1).saturating_mul(self.row_accesses) <= WINDOW_BUDGET;
            if !window_ok {
                return Err(Stop::Fallback(if vs.intra_row {
                    "window budget exceeded"
                } else {
                    "cross-row interference undecided"
                }));
            }
            if seg.is_some() && !self.leaf_uniform {
                return Err(Stop::Fallback("mixed leaf strides"));
            }
            return Ok(window_eval(
                &self.config,
                &self.row_stmts,
                &mut self.idx,
                v,
                vs.dv,
                line_c,
                vs.producer_rank,
                self.consumer_rank,
                self.k,
                &mut self.lines,
            ));
        }
        Ok(COLD)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{PointClass, Scratch};
    use cme_cache::CacheConfig;
    use cme_ir::{LinExpr, LinRel, Program, ProgramBuilder, RelOp, SNode, SRef};
    use cme_reuse::ReuseAnalysis;

    /// The contract: wherever the tier closes, counts equal the exact
    /// classifier tally. Returns (closed refs, total refs).
    fn assert_matches_classifier(program: &Program, cfg: CacheConfig) -> (usize, usize) {
        let reuse = ReuseAnalysis::analyze(program, cfg.line_bytes());
        let cl = Classifier::new(program, &reuse, cfg);
        let mut scratch = Scratch::new();
        let mut closed = 0usize;
        let nrefs = program.references().len();
        for r in 0..nrefs {
            let sym = analyze_reference(&cl, r, &CancelToken::never()).unwrap();
            assert_eq!(sym.total(), program.ris(r).count(), "ref {r} total");
            let Some(counts) = sym.counts() else {
                continue;
            };
            closed += 1;
            let mut want = RefCounts::default();
            program
                .ris(r)
                .for_each_point(|p| match cl.classify_with_scratch(r, p, &mut scratch) {
                    PointClass::Hit { .. } => want.hits += 1,
                    PointClass::Cold => want.cold += 1,
                    PointClass::ReplacementMiss { .. } => want.replacement += 1,
                });
            assert_eq!(counts, want, "ref {r} counts diverge from classifier");
        }
        (closed, nrefs)
    }

    fn stream_program(len: i64) -> Program {
        let mut b = ProgramBuilder::new("stream");
        b.array("A", &[len], 8);
        b.push(SNode::loop_(
            "I",
            1,
            len,
            vec![SNode::reads_only(vec![SRef::new(
                "A",
                vec![LinExpr::var("I")],
            )])],
        ));
        b.build().unwrap()
    }

    #[test]
    fn stream_closes_exactly() {
        for len in [17i64, 64, 301] {
            let p = stream_program(len);
            for cfg in [
                CacheConfig::new(1024, 32, 1).unwrap(),
                CacheConfig::new(512, 32, 2).unwrap(),
                CacheConfig::with_geometry(24, 12, 2).unwrap(), // non-pow2
            ] {
                let (closed, total) = assert_matches_classifier(&p, cfg);
                assert_eq!(closed, total, "len {len} cfg {cfg:?} must fully close");
            }
        }
    }

    #[test]
    fn stencil_nest_closes_exactly() {
        let n = 40i64;
        let mut b = ProgramBuilder::new("stencil");
        b.array("X", &[n, n], 8);
        b.array("Y", &[n, n], 8);
        let (i, j) = (LinExpr::var("I"), LinExpr::var("J"));
        b.push(SNode::loop_(
            "J",
            2,
            n - 1,
            vec![SNode::loop_(
                "I",
                2,
                n - 1,
                vec![SNode::assign(
                    SRef::new("Y", vec![i.clone(), j.clone()]),
                    vec![
                        SRef::new("X", vec![i.offset(-1), j.clone()]),
                        SRef::new("X", vec![i.offset(1), j.clone()]),
                        SRef::new("X", vec![i.clone(), j.clone()]),
                    ],
                )],
            )],
        ));
        let p = b.build().unwrap();
        for cfg in [
            CacheConfig::new(4 * 1024, 32, 4).unwrap(),
            CacheConfig::new(32 * 1024, 32, 2).unwrap(),
            CacheConfig::with_geometry(40, 20, 3).unwrap(), // non-pow2
        ] {
            let (closed, _) = assert_matches_classifier(&p, cfg);
            assert!(closed > 0, "cfg {cfg:?}: nothing closed");
        }
    }

    #[test]
    fn guarded_nest_matches_wherever_closed() {
        let n = 24i64;
        let mut b = ProgramBuilder::new("guarded");
        b.array("A", &[n, n], 8);
        b.array("B", &[n, n], 8);
        let (i, j) = (LinExpr::var("I"), LinExpr::var("J"));
        b.push(SNode::loop_(
            "J",
            2,
            n,
            vec![SNode::loop_(
                "I",
                1,
                n,
                vec![
                    SNode::assign(
                        SRef::new("A", vec![i.clone(), j.clone()]),
                        vec![SRef::new("A", vec![i.clone(), j.offset(-1)])],
                    ),
                    SNode::if_(
                        vec![LinRel::new(i.clone(), RelOp::Le, j.clone())],
                        vec![SNode::reads_only(vec![SRef::new(
                            "B",
                            vec![j.clone(), i.clone()],
                        )])],
                    ),
                ],
            )],
        ));
        let p = b.build().unwrap();
        for cfg in [
            CacheConfig::new(4096, 32, 2).unwrap(),
            CacheConfig::with_geometry(24, 12, 2).unwrap(),
        ] {
            assert_matches_classifier(&p, cfg);
        }
    }

    #[test]
    fn cross_nest_reuse_matches_wherever_closed() {
        // Two nests with cross-nest reuse: the cross-row vectors usually
        // force fallbacks; whatever closes must still be exact.
        let n = 20i64;
        let mut b = ProgramBuilder::new("twonests");
        b.array("X", &[n, n], 8);
        b.array("Y", &[n, n], 8);
        let (i, j) = (LinExpr::var("I"), LinExpr::var("J"));
        b.push(SNode::loop_(
            "J",
            1,
            n,
            vec![SNode::loop_(
                "I",
                1,
                n,
                vec![SNode::assign(
                    SRef::new("Y", vec![i.clone(), j.clone()]),
                    vec![SRef::new("X", vec![i.clone(), j.clone()])],
                )],
            )],
        ));
        let (i2, j2) = (LinExpr::var("I2"), LinExpr::var("J2"));
        b.push(SNode::loop_(
            "J2",
            1,
            n,
            vec![SNode::loop_(
                "I2",
                1,
                n,
                vec![SNode::assign(
                    SRef::new("X", vec![i2.clone(), j2.clone()]),
                    vec![SRef::new("Y", vec![i2.clone(), j2.clone()])],
                )],
            )],
        ));
        let p = b.build().unwrap();
        for cfg in [
            CacheConfig::new(1024, 32, 2).unwrap(),
            CacheConfig::new(8192, 32, 1).unwrap(),
        ] {
            assert_matches_classifier(&p, cfg);
        }
    }

    #[test]
    fn empty_ris_closes_to_zero() {
        // A guard that never holds gives an empty RIS.
        let mut b = ProgramBuilder::new("empty");
        b.array("A", &[8], 8);
        let i = LinExpr::var("I");
        b.push(SNode::loop_(
            "I",
            1,
            8,
            vec![SNode::if_(
                vec![LinRel::new(i.clone(), RelOp::Ge, LinExpr::constant(100))],
                vec![SNode::reads_only(vec![SRef::new("A", vec![i.clone()])])],
            )],
        ));
        let p = b.build().unwrap();
        let cfg = CacheConfig::new(1024, 32, 1).unwrap();
        let reuse = ReuseAnalysis::analyze(&p, cfg.line_bytes());
        let cl = Classifier::new(&p, &reuse, cfg);
        let sym = analyze_reference(&cl, 0, &CancelToken::never()).unwrap();
        assert!(sym.closed());
        assert_eq!(sym.counts().unwrap().total(), 0);
    }

    #[test]
    fn cancelled_token_aborts() {
        let p = stream_program(64 * 1024);
        let cfg = CacheConfig::new(1024, 32, 1).unwrap();
        let reuse = ReuseAnalysis::analyze(&p, cfg.line_bytes());
        let cl = Classifier::new(&p, &reuse, cfg);
        let cancel = CancelToken::new();
        cancel.cancel();
        assert!(Symbolic::build(&cl, &cancel).is_err());
        assert!(Symbolic::build(&cl, &CancelToken::never()).is_ok());
    }
}
