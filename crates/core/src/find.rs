//! `FindMisses`: exact analysis of every iteration point (Fig. 6, left).

use crate::cancel::{CancelToken, Cancelled};
use crate::classify::{Classifier, WalkStrategy};
use crate::options::{PrepassMode, SymbolicMode, Threads};
use crate::parallel;
use crate::prepass;
use crate::report::{Coverage, RefReport, Report};
use crate::symbolic;
use cme_cache::CacheConfig;
use cme_ir::Program;
use cme_reuse::ReuseAnalysis;
use std::time::Instant;

/// Exact miss analysis: classifies *all* iteration points of every
/// reference. Practical for small problem sizes; use
/// [`crate::EstimateMisses`] for whole programs.
///
/// # Examples
///
/// ```
/// use cme_analysis::FindMisses;
/// use cme_cache::{CacheConfig, Simulator};
/// use cme_ir::{ProgramBuilder, SNode, SRef, LinExpr};
///
/// let mut b = ProgramBuilder::new("scan");
/// b.array("A", &[64], 8);
/// b.push(SNode::loop_("I", 1, 64,
///     vec![SNode::reads_only(vec![SRef::new("A", vec![LinExpr::var("I")])])]));
/// let p = b.build()?;
/// let cfg = CacheConfig::new(1024, 32, 1).expect("valid geometry");
///
/// let report = FindMisses::new(&p, cfg).run();
/// let sim = Simulator::new(cfg).run(&p);
/// assert_eq!(report.exact_misses(), Some(sim.total_misses()));
/// # Ok::<(), cme_ir::IrError>(())
/// ```
#[derive(Debug)]
pub struct FindMisses<'p> {
    program: &'p Program,
    config: CacheConfig,
    reuse: ReuseAnalysis,
    threads: Threads,
    walk: WalkStrategy,
    prepass: PrepassMode,
    symbolic: SymbolicMode,
}

impl<'p> FindMisses<'p> {
    /// Prepares the analysis (generates reuse vectors).
    pub fn new(program: &'p Program, config: CacheConfig) -> Self {
        let reuse = ReuseAnalysis::analyze(program, config.line_bytes());
        FindMisses {
            program,
            config,
            reuse,
            threads: Threads::default(),
            walk: WalkStrategy::default(),
            prepass: PrepassMode::default(),
            symbolic: SymbolicMode::default(),
        }
    }

    /// Reuses pre-generated vectors (must match the program and the line
    /// size of `config`).
    pub fn with_reuse(program: &'p Program, config: CacheConfig, reuse: ReuseAnalysis) -> Self {
        FindMisses {
            program,
            config,
            reuse,
            threads: Threads::default(),
            walk: WalkStrategy::default(),
            prepass: PrepassMode::default(),
            symbolic: SymbolicMode::default(),
        }
    }

    /// Sets the worker-thread count. The report is byte-identical for every
    /// setting (the parallel reduction is deterministic); `Fixed(1)` runs
    /// the legacy serial path.
    pub fn threads(mut self, threads: Threads) -> Self {
        self.threads = threads;
        self
    }

    /// Selects the interference-walk strategy (default
    /// [`WalkStrategy::SetSkip`]). Verdicts — and therefore reports — are
    /// bit-identical for every strategy; the knob exists for differential
    /// testing and benchmarking against the legacy full scan.
    pub fn strategy(mut self, walk: WalkStrategy) -> Self {
        self.walk = walk;
        self
    }

    /// Enables or disables the definitely-hit/definitely-miss pre-pass
    /// (default [`PrepassMode::On`]). The pre-pass resolves points only to
    /// the verdict the exact walk would reach, so the report is
    /// byte-identical for both settings; `Off` exists for differential
    /// testing and timing comparisons.
    pub fn prepass(mut self, mode: PrepassMode) -> Self {
        self.prepass = mode;
        self
    }

    /// Enables the symbolic counting tier (default [`SymbolicMode::Off`]).
    /// References whose miss equations close into segment × residue-class
    /// form are counted without visiting iteration points; the rest take
    /// the exact walk. Closed counts equal the classifier tally by
    /// construction, so the report is byte-identical for both settings.
    pub fn symbolic(mut self, mode: SymbolicMode) -> Self {
        self.symbolic = mode;
        self
    }

    /// The generated reuse vectors.
    pub fn reuse(&self) -> &ReuseAnalysis {
        &self.reuse
    }

    /// Classifies every point of every RIS.
    pub fn run(&self) -> Report {
        self.run_cancellable(&CancelToken::never())
            .expect("never-token runs cannot be cancelled")
    }

    /// Like [`FindMisses::run`], but aborts cleanly when `cancel` fires
    /// (explicitly or by deadline). The token is checked per work chunk
    /// (~1k points); on abort the error reports how many points of the
    /// completed references had been classified.
    pub fn run_cancellable(&self, cancel: &CancelToken) -> Result<Report, Cancelled> {
        let start = Instant::now();
        let classifier =
            Classifier::new(self.program, &self.reuse, self.config).with_strategy(self.walk);
        let threads = self.threads.count();
        let mut reports = Vec::with_capacity(self.program.references().len());
        let mut points_done = 0u64;
        let mut prepass_resolved = 0u64;
        let mut symbolic_refs = 0u64;
        let mut symbolic_points = 0u64;
        for r in 0..self.program.references().len() {
            let ris = self.program.ris(r);
            if self.symbolic == SymbolicMode::On {
                let sym = symbolic::analyze_reference(&classifier, r, cancel)
                    .map_err(|_| Cancelled { points_done })?;
                if let Some(counts) = sym.counts() {
                    symbolic_refs += 1;
                    symbolic_points += counts.total();
                    points_done += counts.total();
                    reports.push(RefReport {
                        r,
                        ris_size: counts.total(),
                        analyzed: counts.total(),
                        cold: counts.cold,
                        replacement: counts.replacement,
                        hits: counts.hits,
                        coverage: Coverage::Exhaustive,
                    });
                    continue;
                }
            }
            let verdicts = match self.prepass {
                PrepassMode::On => Some(
                    prepass::analyze_reference(&classifier, r, cancel)
                        .map_err(|_| Cancelled { points_done })?,
                ),
                PrepassMode::Off => None,
            };
            if let Some(v) = &verdicts {
                prepass_resolved += v.resolved();
            }
            let tally = parallel::classify_exhaustive(
                &classifier,
                r,
                ris,
                threads,
                cancel,
                verdicts.as_ref(),
            )
            .ok_or(Cancelled { points_done })?;
            points_done += tally.analyzed();
            reports.push(RefReport {
                r,
                ris_size: tally.analyzed(),
                analyzed: tally.analyzed(),
                cold: tally.cold,
                replacement: tally.replacement,
                hits: tally.hits,
                coverage: Coverage::Exhaustive,
            });
        }
        Ok(Report::new(reports, start.elapsed())
            .with_prepass_resolved(prepass_resolved)
            .with_symbolic_closed(symbolic_refs, symbolic_points))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cme_cache::Simulator;
    use cme_ir::{LinExpr, LinRel, ProgramBuilder, RelOp, SNode, SRef};

    /// End-to-end exactness check on the Figure 1/2 program across
    /// associativities and cache sizes, against the LRU simulator.
    #[test]
    fn exact_on_figure2_program() {
        let n = 16i64;
        let mut b = ProgramBuilder::new("fig2");
        b.array("A", &[n], 8);
        b.array("B", &[n, n], 8);
        let i1 = LinExpr::var("I1");
        let i2 = LinExpr::var("I2");
        b.push(SNode::loop_(
            "I1",
            2,
            n,
            vec![
                SNode::assign(SRef::new("A", vec![i1.offset(-1)]), vec![]).labelled("S1"),
                SNode::loop_(
                    "I2",
                    i1.clone(),
                    n,
                    vec![SNode::assign(
                        SRef::new("B", vec![i2.offset(-1), i1.clone()]),
                        vec![SRef::new("A", vec![i2.offset(-1)])],
                    )
                    .labelled("S2")],
                ),
                SNode::loop_(
                    "I2",
                    1,
                    n,
                    vec![
                        SNode::reads_only(vec![SRef::new("B", vec![i2.clone(), i1.clone()])])
                            .labelled("S3"),
                        SNode::if_(
                            vec![LinRel::new(i2.clone(), RelOp::Eq, LinExpr::constant(n))],
                            vec![SNode::reads_only(vec![SRef::new("A", vec![i1.clone()])])
                                .labelled("S4")],
                        ),
                    ],
                ),
            ],
        ));
        b.push(SNode::loop_(
            "I1",
            1,
            n - 1,
            vec![SNode::assign(SRef::new("A", vec![i1.offset(1)]), vec![]).labelled("S5")],
        ));
        let p = b.build().unwrap();

        for (size, assoc) in [(512u64, 1u32), (512, 2), (1024, 1), (1024, 4), (4096, 2)] {
            let cfg = CacheConfig::new(size, 32, assoc).unwrap();
            let report = FindMisses::new(&p, cfg).run();
            let sim = Simulator::new(cfg).run(&p);
            assert_eq!(report.total_accesses(), sim.total_accesses());
            let pred = report.exact_misses().unwrap();
            // The S1/S4 guards make some group reuse point-dependent
            // ("facet" reuse, ignored per §3.5), so the prediction may
            // overestimate slightly — never underestimate, and the miss
            // *ratio* stays within 3 % absolute of the simulator.
            assert!(
                pred >= sim.total_misses(),
                "cfg {cfg}: FindMisses underestimated {pred} < {}",
                sim.total_misses()
            );
            let err = (pred - sim.total_misses()) as f64 / sim.total_accesses() as f64;
            assert!(
                err <= 0.03,
                "cfg {cfg}: overestimate {pred} vs {} (abs err {err:.4})",
                sim.total_misses()
            );
        }
    }

    /// On a guard-free perfect-nest program the reuse-vector set is
    /// complete and FindMisses matches the simulator *exactly* across
    /// associativities (the Table 3 situation).
    #[test]
    fn exact_on_perfect_nests() {
        let n = 20i64;
        let mut b = ProgramBuilder::new("perfect");
        b.array("X", &[n, n], 8);
        b.array("Y", &[n, n], 8);
        b.array("Z", &[n], 8);
        let i = LinExpr::var("I");
        let j = LinExpr::var("J");
        b.push(SNode::loop_(
            "J",
            2,
            n - 1,
            vec![SNode::loop_(
                "I",
                2,
                n - 1,
                vec![SNode::assign(
                    SRef::new("Y", vec![i.clone(), j.clone()]),
                    vec![
                        SRef::new("X", vec![i.offset(-1), j.clone()]),
                        SRef::new("X", vec![i.offset(1), j.clone()]),
                        SRef::new("X", vec![i.clone(), j.offset(-1)]),
                        SRef::new("Z", vec![i.clone()]),
                    ],
                )],
            )],
        ));
        let j2 = LinExpr::var("J2");
        let i2 = LinExpr::var("I2");
        b.push(SNode::loop_(
            "J2",
            2,
            n - 1,
            vec![SNode::loop_(
                "I2",
                2,
                n - 1,
                vec![SNode::assign(
                    SRef::new("X", vec![i2.clone(), j2.clone()]),
                    vec![SRef::new("Y", vec![i2.clone(), j2.clone()])],
                )],
            )],
        ));
        let p = b.build().unwrap();
        for (size, assoc) in [(1024u64, 1u32), (1024, 2), (2048, 4), (4096, 1)] {
            let cfg = CacheConfig::new(size, 32, assoc).unwrap();
            let report = FindMisses::new(&p, cfg).run();
            let sim = Simulator::new(cfg).run(&p);
            assert_eq!(
                report.exact_misses(),
                Some(sim.total_misses()),
                "cfg {cfg} not exact"
            );
        }
    }

    /// The rendered per-reference table is well-formed.
    #[test]
    fn report_renders() {
        let mut b = ProgramBuilder::new("render");
        b.array("A", &[32], 8);
        b.push(SNode::loop_(
            "I",
            1,
            32,
            vec![SNode::reads_only(vec![SRef::new(
                "A",
                vec![LinExpr::var("I")],
            )])],
        ));
        let p = b.build().unwrap();
        let cfg = CacheConfig::new(1024, 32, 1).unwrap();
        let report = FindMisses::new(&p, cfg).run();
        let text = report.render(&p);
        assert!(text.contains("A(I)"), "{text}");
        assert!(text.contains("TOTAL"), "{text}");
        assert!(text.lines().count() >= 3);
    }

    /// Per-reference attribution also matches the simulator.
    #[test]
    fn per_reference_matches_simulator() {
        let mut b = ProgramBuilder::new("perref");
        b.array("A", &[32], 8);
        b.array("C", &[32], 8);
        let i = LinExpr::var("I");
        let j = LinExpr::var("J");
        b.push(SNode::loop_(
            "I",
            1,
            32,
            vec![SNode::assign(
                SRef::new("C", vec![i.clone()]),
                vec![SRef::new("A", vec![i.clone()])],
            )],
        ));
        b.push(SNode::loop_(
            "J",
            1,
            32,
            vec![SNode::reads_only(vec![SRef::new("A", vec![j.clone()])])],
        ));
        let p = b.build().unwrap();
        let cfg = CacheConfig::new(2048, 32, 1).unwrap();
        let report = FindMisses::new(&p, cfg).run();
        let sim = Simulator::new(cfg).run(&p);
        for r in 0..p.references().len() {
            let rr = report.reference(r);
            let sc = sim.reference(r);
            assert_eq!(rr.ris_size, sc.accesses, "ref {r} access count");
            assert_eq!(
                rr.cold + rr.replacement,
                sc.misses,
                "ref {r} ({}) miss count",
                p.reference(r).display
            );
        }
    }
}
