//! Cooperative cancellation and deadlines for long-running analyses.
//!
//! A [`CancelToken`] is threaded into the chunked classification loops of
//! `FindMisses`/`EstimateMisses` and checked **per chunk** (about a thousand
//! classified points), not per point — the check is one atomic load plus, at
//! most, one monotonic-clock read, so the cancellable path costs nothing
//! measurable while still bounding the abort latency to one chunk's worth of
//! work. A request `timeout_ms` (deadline) or a dropped client connection
//! (explicit [`CancelToken::cancel`]) therefore aborts an analysis cleanly
//! with a partial-progress [`Cancelled`] error instead of pinning a worker
//! until the full run completes.
//!
//! [`CancelToken::never`] (the `Default`) carries no state at all; the
//! non-cancellable fast paths stay exactly as they were.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    flag: AtomicBool,
    deadline: Option<Instant>,
}

/// A cloneable cancellation handle with an optional deadline.
///
/// Clones share state: cancelling any clone cancels them all. The default
/// token ([`CancelToken::never`]) can never fire and adds no overhead.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<Inner>>,
}

impl CancelToken {
    /// A token that never cancels; analyses run exactly as without one.
    pub fn never() -> Self {
        CancelToken { inner: None }
    }

    /// A manually cancellable token with no deadline.
    pub fn new() -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: None,
            })),
        }
    }

    /// A token that fires once `timeout` has elapsed (and can also be
    /// cancelled manually before that).
    pub fn with_timeout(timeout: Duration) -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: Some(Instant::now() + timeout),
            })),
        }
    }

    /// Requests cancellation. No-op on a [`CancelToken::never`] token.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.flag.store(true, Ordering::Release);
        }
    }

    /// Whether this token can ever fire (i.e. is not the `never` token).
    pub fn can_cancel(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether cancellation has been requested or the deadline has passed.
    pub fn is_cancelled(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => {
                inner.flag.load(Ordering::Acquire)
                    || inner.deadline.is_some_and(|d| Instant::now() >= d)
            }
        }
    }

    /// Whether this token has a deadline and that deadline has passed
    /// (distinguishes a timeout from an explicit cancel).
    pub fn deadline_exceeded(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => inner.deadline.is_some_and(|d| Instant::now() >= d),
        }
    }
}

/// The partial-progress error returned when an analysis is cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled {
    /// Points classified before the abort (whole references only — work in
    /// the reference being classified at cancellation time is discarded).
    pub points_done: u64,
}

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "analysis cancelled after {} classified points",
            self.points_done
        )
    }
}

impl std::error::Error for Cancelled {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_token_never_fires() {
        let t = CancelToken::never();
        assert!(!t.can_cancel());
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(!t.is_cancelled());
        assert!(!t.deadline_exceeded());
    }

    #[test]
    fn manual_cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!clone.is_cancelled());
        t.cancel();
        assert!(clone.is_cancelled());
        assert!(!clone.deadline_exceeded());
    }

    #[test]
    fn deadline_fires() {
        let t = CancelToken::with_timeout(Duration::from_millis(0));
        assert!(t.is_cancelled());
        assert!(t.deadline_exceeded());
        let far = CancelToken::with_timeout(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
    }

    #[test]
    fn cancelled_displays_progress() {
        let c = Cancelled { points_done: 42 };
        assert!(c.to_string().contains("42"));
    }
}
