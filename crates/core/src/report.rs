//! Analysis reports: per-reference and whole-program miss statistics.

use cme_ir::RefId;

/// How a reference was analysed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coverage {
    /// Every iteration point of the RIS was classified (`FindMisses`, or
    /// `EstimateMisses` on a small RIS).
    Exhaustive,
    /// A uniform sample was classified.
    Sampled {
        /// Number of points sampled.
        samples: u64,
    },
}

/// Per-reference analysis outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct RefReport {
    /// The reference.
    pub r: RefId,
    /// RIS volume (total dynamic accesses of this reference).
    pub ris_size: u64,
    /// Points analysed.
    pub analyzed: u64,
    /// Of which classified cold misses.
    pub cold: u64,
    /// Of which classified replacement misses.
    pub replacement: u64,
    /// Of which hits.
    pub hits: u64,
    /// Exhaustive or sampled.
    pub coverage: Coverage,
}

impl RefReport {
    /// Miss ratio among analysed points (`0` when nothing was analysed).
    pub fn miss_ratio(&self) -> f64 {
        if self.analyzed == 0 {
            0.0
        } else {
            (self.cold + self.replacement) as f64 / self.analyzed as f64
        }
    }

    /// Estimated dynamic misses: `ris_size × miss_ratio`. Exact for
    /// exhaustive coverage.
    pub fn estimated_misses(&self) -> f64 {
        self.miss_ratio() * self.ris_size as f64
    }
}

/// Whole-program analysis outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    per_ref: Vec<RefReport>,
    elapsed: std::time::Duration,
    /// Points resolved by the hit/miss pre-pass (0 when it was off).
    /// Diagnostic only: deliberately absent from [`Report::render`], whose
    /// bytes must not depend on how points were classified.
    prepass_resolved: u64,
    /// References the symbolic tier counted in closed form (0 when it was
    /// off). Diagnostic only, absent from [`Report::render`] for the same
    /// reason as `prepass_resolved`.
    symbolic_refs_closed: u64,
    /// Points covered by symbolically closed references.
    symbolic_points_closed: u64,
}

impl Report {
    pub(crate) fn new(per_ref: Vec<RefReport>, elapsed: std::time::Duration) -> Self {
        Report {
            per_ref,
            elapsed,
            prepass_resolved: 0,
            symbolic_refs_closed: 0,
            symbolic_points_closed: 0,
        }
    }

    pub(crate) fn with_prepass_resolved(mut self, n: u64) -> Self {
        self.prepass_resolved = n;
        self
    }

    pub(crate) fn with_symbolic_closed(mut self, refs: u64, points: u64) -> Self {
        self.symbolic_refs_closed = refs;
        self.symbolic_points_closed = points;
        self
    }

    /// Points the hit/miss pre-pass resolved without an interference walk
    /// (0 when the pre-pass was off or resolved nothing).
    pub fn prepass_resolved(&self) -> u64 {
        self.prepass_resolved
    }

    /// References the symbolic tier counted in closed form without touching
    /// individual iteration points (0 when symbolic analysis was off or
    /// nothing closed).
    pub fn symbolic_refs_closed(&self) -> u64 {
        self.symbolic_refs_closed
    }

    /// Dynamic accesses covered by symbolically closed references.
    pub fn symbolic_points_closed(&self) -> u64 {
        self.symbolic_points_closed
    }

    /// Per-reference reports, indexed by [`RefId`].
    pub fn references(&self) -> &[RefReport] {
        &self.per_ref
    }

    /// One reference's report.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn reference(&self, r: RefId) -> &RefReport {
        &self.per_ref[r]
    }

    /// Total dynamic accesses (Σ RIS volumes).
    pub fn total_accesses(&self) -> u64 {
        self.per_ref.iter().map(|r| r.ris_size).sum()
    }

    /// Estimated total misses: `Σ |RIS_R| × miss_ratio(R)`. Exact when every
    /// reference was analysed exhaustively.
    pub fn estimated_misses(&self) -> f64 {
        self.per_ref.iter().map(RefReport::estimated_misses).sum()
    }

    /// The loop-nest miss ratio of Fig. 6:
    /// `Σ |RIS_R| × miss_ratio(R) / Σ |RIS_R|`.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.total_accesses();
        if total == 0 {
            0.0
        } else {
            self.estimated_misses() / total as f64
        }
    }

    /// Exact total misses; available only when every reference was analysed
    /// exhaustively.
    pub fn exact_misses(&self) -> Option<u64> {
        if self
            .per_ref
            .iter()
            .all(|r| r.coverage == Coverage::Exhaustive)
        {
            Some(self.per_ref.iter().map(|r| r.cold + r.replacement).sum())
        } else {
            None
        }
    }

    /// Total cold misses among analysed points (scaled estimates are per
    /// reference via [`RefReport`]).
    pub fn analyzed_cold(&self) -> u64 {
        self.per_ref.iter().map(|r| r.cold).sum()
    }

    /// Total replacement misses among analysed points.
    pub fn analyzed_replacement(&self) -> u64 {
        self.per_ref.iter().map(|r| r.replacement).sum()
    }

    /// Wall-clock time of the analysis.
    pub fn elapsed(&self) -> std::time::Duration {
        self.elapsed
    }

    /// Renders a per-reference breakdown table (reference text, RIS volume,
    /// coverage, cold/replacement/hit splits and the miss ratio) — the
    /// per-reference diagnosis view miss-equation tooling is used for.
    pub fn render(&self, program: &cme_ir::Program) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28} {:>10} {:>10} {:>8} {:>8} {:>8} {:>8}",
            "reference", "accesses", "analyzed", "cold", "repl", "hits", "miss %"
        );
        for rr in &self.per_ref {
            let name = &program.reference(rr.r).display;
            let cov = match rr.coverage {
                Coverage::Exhaustive => rr.analyzed.to_string(),
                Coverage::Sampled { samples } => format!("~{samples}"),
            };
            let _ = writeln!(
                out,
                "{:<28} {:>10} {:>10} {:>8} {:>8} {:>8} {:>8.2}",
                name,
                rr.ris_size,
                cov,
                rr.cold,
                rr.replacement,
                rr.hits,
                100.0 * rr.miss_ratio()
            );
        }
        let _ = writeln!(
            out,
            "{:<28} {:>10} {:>10} {:>8} {:>8} {:>8} {:>8.2}",
            "TOTAL",
            self.total_accesses(),
            "",
            self.analyzed_cold(),
            self.analyzed_replacement(),
            "",
            100.0 * self.miss_ratio()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rr(ris: u64, analyzed: u64, cold: u64, repl: u64, coverage: Coverage) -> RefReport {
        RefReport {
            r: 0,
            ris_size: ris,
            analyzed,
            cold,
            replacement: repl,
            hits: analyzed - cold - repl,
            coverage,
        }
    }

    #[test]
    fn ratios_weight_by_ris_volume() {
        let report = Report::new(
            vec![
                rr(100, 100, 10, 0, Coverage::Exhaustive),
                rr(300, 300, 0, 60, Coverage::Exhaustive),
            ],
            std::time::Duration::ZERO,
        );
        assert_eq!(report.total_accesses(), 400);
        assert_eq!(report.exact_misses(), Some(70));
        assert!((report.miss_ratio() - 70.0 / 400.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_reports_scale() {
        let report = Report::new(
            vec![rr(1000, 100, 10, 10, Coverage::Sampled { samples: 100 })],
            std::time::Duration::ZERO,
        );
        assert_eq!(report.exact_misses(), None);
        assert!((report.estimated_misses() - 200.0).abs() < 1e-9);
        assert!((report.miss_ratio() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_report() {
        let report = Report::new(vec![], std::time::Duration::ZERO);
        assert_eq!(report.miss_ratio(), 0.0);
        assert_eq!(report.exact_misses(), Some(0));
    }
}
