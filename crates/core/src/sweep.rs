//! Amortized geometry sweeps: one reuse analysis, a whole design-space
//! grid.
//!
//! Reuse vectors depend only on program structure and the line size —
//! never on capacity or associativity — so a grid of geometries that
//! shares `d` distinct line sizes needs exactly `d` reuse analyses, not
//! one per cell. A [`SweepPlan`] hoists everything geometry-independent
//! out of the per-geometry loop:
//!
//! * **reuse vectors** — one [`ReuseAnalysis`] per distinct line size,
//!   shared (behind `Arc`) by every geometry with that line size;
//! * **classifier construction** — one [`Classifier`] per geometry, built
//!   once up front (per-reference address plans, bounding boxes and
//!   lexical ranks are hoisted there, borrowed from the shared reuse);
//! * **iteration-space rows** — each reference's RIS is enumerated into
//!   its flat row buffer *once* ([`Program::flat_ris`]) and every
//!   geometry's chunked walk indexes the same rows.
//!
//! Per geometry, classification runs through the existing accelerating
//! tiers in the same order as [`crate::FindMisses`]: the symbolic tier
//! first (closed references never touch the rows), then the hit/miss
//! pre-pass, then the chunked exact walk — fanned out over
//! *(geometry, chunk)* work items on the parallel engine, so a grid
//! keeps every worker busy even when single references split into few
//! chunks.
//!
//! # Correctness contract
//!
//! Every cell of [`SweepPlan::run`] is **byte-identical** (after payload
//! rendering) to an independent single-geometry [`crate::FindMisses`]
//! run: the same tiers make the same per-point decisions, and the merged
//! quantities are sums of `u64` counters, so neither the fan-out shape
//! nor the thread count can change a report. The differential tests
//! below and the `bench_sweep` CI gate assert exactly this.

use crate::cancel::{CancelToken, Cancelled};
use crate::classify::{Classifier, Scratch, WalkStrategy};
use crate::options::{PrepassMode, SymbolicMode, Threads};
use crate::parallel::{self, Tally, CHUNK_POINTS};
use crate::prepass::{self, RefVerdicts};
use crate::report::{Coverage, RefReport, Report};
use crate::symbolic;
use cme_cache::CacheConfig;
use cme_ir::Program;
use cme_reuse::ReuseAnalysis;
use std::sync::Arc;
use std::time::Instant;

/// Knobs of a sweep run. All four are pure accelerators: results are
/// byte-identical across every combination (the differential tests
/// assert it), exactly as for [`crate::FindMisses`].
#[derive(Debug, Clone, Copy)]
pub struct SweepOptions {
    pub threads: Threads,
    pub walk: WalkStrategy,
    pub prepass: PrepassMode,
    /// Defaults to **on** for sweeps (unlike single queries): closed
    /// references skip the per-geometry walk entirely, which is where a
    /// grid's multiplicative win lives.
    pub symbolic: SymbolicMode,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            threads: Threads::default(),
            walk: WalkStrategy::default(),
            prepass: PrepassMode::default(),
            symbolic: SymbolicMode::On,
        }
    }
}

/// The geometry-independent half of a design-space sweep: the program
/// plus one shared [`ReuseAnalysis`] per distinct line size.
///
/// Build it once with [`SweepPlan::new`] (or [`SweepPlan::with_reuse`]
/// when the caller already caches reuse analyses, like the serve
/// engine), then evaluate any number of geometry grids with
/// [`SweepPlan::run`].
#[derive(Debug)]
pub struct SweepPlan<'p> {
    program: &'p Program,
    /// `(line_bytes, analysis)` in first-seen order.
    reuse: Vec<(u64, Arc<ReuseAnalysis>)>,
}

impl<'p> SweepPlan<'p> {
    /// Analyses reuse once per distinct line size in `geometries`.
    pub fn new(program: &'p Program, geometries: &[CacheConfig]) -> Self {
        let mut reuse: Vec<(u64, Arc<ReuseAnalysis>)> = Vec::new();
        for g in geometries {
            let line = g.line_bytes();
            if !reuse.iter().any(|&(l, _)| l == line) {
                reuse.push((line, Arc::new(ReuseAnalysis::analyze(program, line))));
            }
        }
        SweepPlan { program, reuse }
    }

    /// A plan over caller-supplied reuse analyses (`(line_bytes,
    /// analysis)` pairs); each must have been generated for `program` at
    /// its line size, uncapped.
    pub fn with_reuse(program: &'p Program, reuse: Vec<(u64, Arc<ReuseAnalysis>)>) -> Self {
        SweepPlan { program, reuse }
    }

    /// The shared reuse analysis for one line size, if the plan covers it.
    pub fn reuse_for(&self, line_bytes: u64) -> Option<&Arc<ReuseAnalysis>> {
        self.reuse
            .iter()
            .find(|&&(l, _)| l == line_bytes)
            .map(|(_, a)| a)
    }

    /// Distinct line sizes (= reuse analyses) the plan holds.
    pub fn line_sizes(&self) -> usize {
        self.reuse.len()
    }

    /// Evaluates every geometry of the grid, returning one [`Report`] per
    /// geometry in input order. See [`SweepPlan::run_cancellable`].
    ///
    /// # Panics
    ///
    /// Panics if a geometry's line size is not covered by the plan (never
    /// the case for a plan from [`SweepPlan::new`] over the same grid).
    pub fn run(&self, geometries: &[CacheConfig], opts: &SweepOptions) -> Vec<Report> {
        self.run_cancellable(geometries, opts, &CancelToken::never())
            .expect("never-token sweeps cannot be cancelled")
    }

    /// Cancellable [`SweepPlan::run`]: the token is checked per symbolic /
    /// pre-pass tier and per work chunk, exactly as in single-geometry
    /// analysis. On cancellation all per-cell progress is discarded.
    ///
    /// # Errors
    ///
    /// [`Cancelled`] when the token fired mid-sweep.
    ///
    /// # Panics
    ///
    /// As [`SweepPlan::run`], for a line size the plan does not cover.
    pub fn run_cancellable(
        &self,
        geometries: &[CacheConfig],
        opts: &SweepOptions,
        cancel: &CancelToken,
    ) -> Result<Vec<Report>, Cancelled> {
        let start = Instant::now();
        let threads = opts.threads.count();
        let nrefs = self.program.references().len();
        // One classifier per geometry, hoisted out of the reference loop.
        // Each borrows the shared reuse analysis for its line size.
        let classifiers: Vec<Classifier<'_>> = geometries
            .iter()
            .map(|&g| {
                let reuse = self
                    .reuse_for(g.line_bytes())
                    .expect("sweep plan must cover every line size of the grid");
                Classifier::new(self.program, reuse, g).with_strategy(opts.walk)
            })
            .collect();
        let mut cells: Vec<CellAcc> = geometries.iter().map(|_| CellAcc::default()).collect();
        let mut points_done: u64 = 0;

        for r in 0..nrefs {
            // Geometry-dependent tiers first: symbolic closure, then the
            // pre-pass. Cells the tiers do not finish stay pending and
            // share one flat row buffer below.
            let mut pending: Vec<(usize, Option<RefVerdicts>)> = Vec::new();
            for (ci, cl) in classifiers.iter().enumerate() {
                if opts.symbolic == SymbolicMode::On {
                    let sym = symbolic::analyze_reference(cl, r, cancel)
                        .map_err(|_| Cancelled { points_done })?;
                    if let Some(counts) = sym.counts() {
                        points_done += counts.total();
                        cells[ci].reports.push(RefReport {
                            r,
                            ris_size: counts.total(),
                            analyzed: counts.total(),
                            cold: counts.cold,
                            replacement: counts.replacement,
                            hits: counts.hits,
                            coverage: Coverage::Exhaustive,
                        });
                        cells[ci].symbolic_refs += 1;
                        cells[ci].symbolic_points += counts.total();
                        continue;
                    }
                }
                let verdicts = match opts.prepass {
                    PrepassMode::On => Some(
                        prepass::analyze_reference(cl, r, cancel)
                            .map_err(|_| Cancelled { points_done })?,
                    ),
                    PrepassMode::Off => None,
                };
                pending.push((ci, verdicts));
            }
            if pending.is_empty() {
                continue;
            }

            // Enumerate the reference's iteration rows once for every
            // pending geometry.
            let (flat, npoints) = self.program.flat_ris(r);
            let dim = self.program.depth();
            if dim == 0 {
                for (ci, verdicts) in &pending {
                    if cancel.is_cancelled() {
                        return Err(Cancelled { points_done });
                    }
                    let tally = zero_dim_tally(&classifiers[*ci], r, verdicts.as_ref());
                    points_done += tally.analyzed();
                    cells[*ci].push_walked(r, tally, verdicts.as_ref());
                }
                continue;
            }

            // Fan the parallel engine out over (geometry, chunk) items:
            // item `i` classifies chunk `i % nchunks` of the shared rows
            // under pending geometry `i / nchunks`. Chunk boundaries are
            // identical to the single-geometry walk, so tallies (and
            // hence reports) are too.
            let nchunks = npoints.div_ceil(CHUNK_POINTS).max(1);
            let ntasks = pending.len() * nchunks;
            let tallies = parallel::run_chunked_cancellable(
                threads,
                ntasks,
                cancel,
                Scratch::new,
                |scratch, i| {
                    let (ci, verdicts) = &pending[i / nchunks];
                    let cl = &classifiers[*ci];
                    let verdicts = verdicts.as_ref();
                    let lo = (i % nchunks) * CHUNK_POINTS;
                    let hi = npoints.min(lo + CHUNK_POINTS);
                    let mut tally = Tally::default();
                    let mut cursor =
                        verdicts.map_or(0, |v| v.cursor_at(&flat[lo * dim..(lo + 1) * dim]));
                    for point in flat[lo * dim..hi * dim].chunks_exact(dim) {
                        match verdicts.and_then(|v| v.lookup(point, &mut cursor)) {
                            Some(v) => tally.bump_verdict(v),
                            None => tally.bump(cl.classify_with_scratch(r, point, scratch)),
                        }
                    }
                    tally
                },
            )
            .ok_or(Cancelled { points_done })?;
            for (p, (ci, verdicts)) in pending.iter().enumerate() {
                let mut total = Tally::default();
                for t in &tallies[p * nchunks..(p + 1) * nchunks] {
                    total.merge(*t);
                }
                points_done += total.analyzed();
                cells[*ci].push_walked(r, total, verdicts.as_ref());
            }
        }

        let elapsed = start.elapsed();
        Ok(cells
            .into_iter()
            .map(|c| {
                Report::new(c.reports, elapsed)
                    .with_prepass_resolved(c.prepass_resolved)
                    .with_symbolic_closed(c.symbolic_refs, c.symbolic_points)
            })
            .collect())
    }
}

/// Per-geometry accumulator while the sweep walks the reference list.
#[derive(Debug, Default)]
struct CellAcc {
    reports: Vec<RefReport>,
    prepass_resolved: u64,
    symbolic_refs: u64,
    symbolic_points: u64,
}

impl CellAcc {
    fn push_walked(&mut self, r: cme_ir::RefId, tally: Tally, verdicts: Option<&RefVerdicts>) {
        if let Some(v) = verdicts {
            self.prepass_resolved += v.resolved();
        }
        self.reports.push(RefReport {
            r,
            ris_size: tally.analyzed(),
            analyzed: tally.analyzed(),
            cold: tally.cold,
            replacement: tally.replacement,
            hits: tally.hits,
            coverage: Coverage::Exhaustive,
        });
    }
}

/// The serial walk for zero-depth programs (no rows to chunk).
fn zero_dim_tally(cl: &Classifier<'_>, r: cme_ir::RefId, verdicts: Option<&RefVerdicts>) -> Tally {
    let mut tally = Tally::default();
    let mut scratch = Scratch::new();
    let mut cursor = 0usize;
    cl.program().ris(r).for_each_point(|point| {
        match verdicts.and_then(|v| v.lookup(point, &mut cursor)) {
            Some(v) => tally.bump_verdict(v),
            None => tally.bump(cl.classify_with_scratch(r, point, &mut scratch)),
        }
    });
    tally
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::find::FindMisses;
    use cme_ir::{LinExpr, Program, ProgramBuilder, SNode, SRef};

    /// A small two-array kernel with both streaming and reuse behaviour.
    fn kernel(n: i64) -> Program {
        let mut b = ProgramBuilder::new("sweep-kernel");
        b.array("A", &[n, n], 8);
        b.array("B", &[n], 8);
        let (i, j) = (LinExpr::var("I"), LinExpr::var("J"));
        b.push(SNode::loop_(
            "J",
            1,
            n,
            vec![SNode::loop_(
                "I",
                1,
                n,
                vec![SNode::reads_only(vec![
                    SRef::new("A", vec![i.clone(), j.clone()]),
                    SRef::new("B", vec![i.clone()]),
                ])],
            )],
        ));
        b.build().unwrap()
    }

    fn grid() -> Vec<CacheConfig> {
        // 2 line sizes x 3 capacities x 2 associativities, plus one
        // non-power-of-two set count through the with_geometry fallback.
        let mut g = CacheConfig::parse_geometry_grid("1K,2K,4K:1,2:16,32").unwrap();
        g.push(CacheConfig::parse_geometry("3K:2:32").unwrap());
        g
    }

    fn assert_reports_equal(a: &Report, b: &Report, what: &str) {
        assert_eq!(a.references().len(), b.references().len(), "{what}");
        for (x, y) in a.references().iter().zip(b.references()) {
            assert_eq!(x.r, y.r, "{what}");
            assert_eq!(x.ris_size, y.ris_size, "{what} ref {}", x.r);
            assert_eq!(x.analyzed, y.analyzed, "{what} ref {}", x.r);
            assert_eq!(x.cold, y.cold, "{what} ref {}", x.r);
            assert_eq!(x.replacement, y.replacement, "{what} ref {}", x.r);
            assert_eq!(x.hits, y.hits, "{what} ref {}", x.r);
            assert_eq!(x.coverage, y.coverage, "{what} ref {}", x.r);
        }
    }

    /// The tentpole contract: every sweep cell equals an independent
    /// single-geometry `FindMisses` run, field for field.
    #[test]
    fn sweep_cells_match_independent_find_misses() {
        let p = kernel(24);
        let grid = grid();
        let plan = SweepPlan::new(&p, &grid);
        assert_eq!(plan.line_sizes(), 2, "two distinct line sizes");
        let reports = plan.run(&grid, &SweepOptions::default());
        assert_eq!(reports.len(), grid.len());
        for (g, cell) in grid.iter().zip(&reports) {
            let solo = FindMisses::new(&p, *g).run();
            assert_reports_equal(cell, &solo, &g.to_string());
        }
    }

    /// Sweep results are invariant across threads x strategy x
    /// prepass/symbolic modes — the same contract `FindMisses` holds.
    #[test]
    fn sweep_is_mode_invariant() {
        let p = kernel(16);
        let grid = grid();
        let plan = SweepPlan::new(&p, &grid);
        let baseline = plan.run(&grid, &SweepOptions::default());
        for threads in [Threads::Fixed(1), Threads::Fixed(4)] {
            for walk in [WalkStrategy::SetSkip, WalkStrategy::LegacyScan] {
                for prepass in [PrepassMode::On, PrepassMode::Off] {
                    for symbolic in [SymbolicMode::On, SymbolicMode::Off] {
                        let opts = SweepOptions {
                            threads,
                            walk,
                            prepass,
                            symbolic,
                        };
                        let got = plan.run(&grid, &opts);
                        for ((g, a), b) in grid.iter().zip(&baseline).zip(&got) {
                            assert_reports_equal(a, b, &format!("{g} {opts:?}"));
                        }
                    }
                }
            }
        }
    }

    /// One plan serves many grids, and duplicate geometries in one grid
    /// produce identical cells.
    #[test]
    fn plan_reuse_and_duplicate_cells() {
        let p = kernel(12);
        let g32 = CacheConfig::parse_geometry("1K:2:32").unwrap();
        let g16 = CacheConfig::parse_geometry("2K:1:16").unwrap();
        let plan = SweepPlan::new(&p, &[g32, g16]);
        let twice = plan.run(&[g32, g16, g32], &SweepOptions::default());
        assert_reports_equal(&twice[0], &twice[2], "duplicate cells");
        let solo = plan.run(&[g16], &SweepOptions::default());
        assert_reports_equal(&twice[1], &solo[0], "plan reuse across grids");
    }

    /// An already-fired token cancels the sweep.
    #[test]
    fn sweep_respects_cancellation() {
        let p = kernel(16);
        let grid = grid();
        let plan = SweepPlan::new(&p, &grid);
        let token = CancelToken::new();
        token.cancel();
        assert!(plan
            .run_cancellable(&grid, &SweepOptions::default(), &token)
            .is_err());
    }
}
