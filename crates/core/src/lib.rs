//! Cache Miss Equations: analytical whole-program cache behaviour analysis
//! (§4 of the paper).
//!
//! Given a normalised [`cme_ir::Program`], a [`cme_cache::CacheConfig`] and
//! the reuse vectors of [`cme_reuse`], this crate classifies every access as
//! a cold miss, a replacement miss or a hit by solving the cold and
//! replacement equations pointwise:
//!
//! * [`FindMisses`] — exact: classifies every iteration point. Matches the
//!   LRU simulator exactly whenever the reuse-vector set is complete
//!   (Table 3 of the paper).
//! * [`EstimateMisses`] — sampled: classifies a uniform sample per
//!   reference, sized by a binomial confidence bound (Fig. 6), achieving
//!   miss ratios within fractions of a percent at a small fraction of the
//!   simulation cost (Tables 4 and 6).
//!
//! # Example
//!
//! ```
//! use cme_analysis::{EstimateMisses, FindMisses, SamplingOptions};
//! use cme_cache::{CacheConfig, Simulator};
//! use cme_ir::{ProgramBuilder, SNode, SRef, LinExpr};
//!
//! let mut b = ProgramBuilder::new("axpy");
//! b.array("X", &[512], 8);
//! b.array("Y", &[512], 8);
//! let i = LinExpr::var("I");
//! b.push(SNode::loop_("I", 1, 512, vec![SNode::assign(
//!     SRef::new("Y", vec![i.clone()]),
//!     vec![SRef::new("X", vec![i.clone()]), SRef::new("Y", vec![i.clone()])],
//! )]));
//! let p = b.build()?;
//! let cfg = CacheConfig::new(32 * 1024, 32, 2).expect("valid geometry");
//!
//! let exact = FindMisses::new(&p, cfg).run();
//! let simulated = Simulator::new(cfg).run(&p);
//! assert_eq!(exact.exact_misses(), Some(simulated.total_misses()));
//!
//! let estimate = EstimateMisses::new(&p, cfg, SamplingOptions::paper_default()).run();
//! assert!((estimate.miss_ratio() - simulated.miss_ratio()).abs() < 0.05);
//! # Ok::<(), cme_ir::IrError>(())
//! ```

pub mod cancel;
pub mod classify;
pub mod estimate;
pub mod find;
pub mod options;
pub mod parallel;
pub mod prepass;
pub mod report;
pub mod sweep;
pub mod symbolic;

pub use cancel::{CancelToken, Cancelled};
pub use classify::{Classifier, PointClass, Scratch, WalkStrategy};
pub use estimate::EstimateMisses;
pub use find::FindMisses;
pub use options::{PrepassMode, SamplingOptions, SymbolicMode, Threads};
pub use prepass::{Prepass, RefVerdicts, Verdict};
pub use report::{Coverage, RefReport, Report};
pub use sweep::{SweepOptions, SweepPlan};
pub use symbolic::{RefCounts, RefSymbolic, Symbolic};
