//! The definitely-hit/definitely-miss pre-pass (DESIGN.md §12).
//!
//! Before the exact per-point walk runs, this module classifies as many
//! `(reference, iteration point)` pairs as it can by abstract interpretation
//! over whole *rows* of the iteration space — in the spirit of the must/may
//! LRU age analyses of Touzeau, Maïza, Monniaux and Reineke ("Fast and exact
//! analysis for LRU caches"): prove the easy verdicts cheaply, leave only an
//! uncertain residue for the expensive exact machinery.
//!
//! A *row* is a maximal run of consecutive innermost-index values of one
//! reference's RIS at a fixed outer-index prefix. At a fixed prefix every
//! quantity the cold/replacement equations consult becomes affine in the one
//! remaining variable `v`, so each screen of the classifier collapses to
//! exact 1-D interval arithmetic:
//!
//! * **producer-exists** — every RIS constraint of the producer reduces to
//!   `a·v + b ⋈ 0`, i.e. a half-line, a point or an excluded value; their
//!   conjunction (plus the bounding box, which is what the classifier
//!   pre-screens with) is an interval with at most a few holes;
//! * **same-line** — consumer and producer addresses are `base + stride·v`,
//!   so the line match is one comparison per point;
//! * **replacement** — decided by one of two *exact-or-nothing* devices:
//!   a row-uniform contention bound (computed once per `(row, vector)`,
//!   `O(1)` per point: if even the widened whole-row interference window
//!   cannot supply `k` distinct conflicting lines, every point of the row is
//!   a hit along that vector), or, for vectors whose interference interval
//!   stays inside the innermost loop row, a direct evaluation of the window
//!   in exactly the interference-walk's visit order.
//!
//! The resulting per-point verdicts — `AlwaysHit`, always-miss
//! ([`Verdict::Cold`] / [`Verdict::Replacement`]) or unknown — **equal the
//! classifier's verdicts wherever they are not unknown**. That is a stronger
//! property than soundness and it is what keeps reports byte-identical with
//! the pre-pass on or off: a resolved point contributes exactly the tally
//! increment the walk would have produced.
//!
//! # Degradation rule (the Monniaux complexity-gap boundary)
//!
//! Anything the 1-D reduction cannot express *exactly* degrades to unknown,
//! never to a guess. Concretely: interference intervals that cross the
//! innermost row (all cross-nest and inlined-call-boundary reuse) are only
//! resolved through the row-uniform contention bound; when that bound cannot
//! prove a hit the point stays unknown and the exact walk decides it.
//! Guards *within* the innermost row are evaluated exactly (inlined
//! straight-line code is handled precisely); rows whose verdict pattern is
//! too irregular to store as runs or a periodic tier degrade wholesale to
//! unknown rather than spilling into per-point bitmaps.
//!
//! # Tier representation
//!
//! Verdicts are stored per row as one of three range-based tiers —
//! uniform, run-length segments, or a periodic pattern of segments (the
//! congruence tier: address periodicity makes verdict patterns repeat with
//! the line size over the innermost stride). Lookup is `O(log runs)` after
//! an amortised-`O(1)` cursor walk over rows, and memory stays proportional
//! to the number of rows, not points.

use crate::cancel::{CancelToken, Cancelled};
use crate::classify::{Classifier, ConsumerPlan};
use cme_cache::CacheConfig;
use cme_ir::{Program, RefId};
use cme_poly::vector::{div_ceil, div_floor};
use cme_poly::{Affine, Constraint, ConstraintKind};

/// A resolved verdict for one iteration point: what the exact walk would
/// conclude, proven without running it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The access definitely hits (`AlwaysHit`).
    Hit,
    /// The access definitely misses on a never-before-seen line.
    Cold,
    /// The access definitely misses by LRU replacement.
    Replacement,
}

/// Points per cancellation check inside the pre-pass.
const CANCEL_GRAIN: u64 = 4096;

/// Budget (window accesses) for the exact intra-row window evaluation; a
/// window of `(dv + 1) · row_accesses` beyond this falls back to the
/// contention bound or unknown.
pub(crate) const WINDOW_BUDGET: usize = 1024;

/// Maximum run-length segments stored per row before trying the periodic
/// tier; beyond both, the row degrades to uniformly unknown.
const MAX_ROW_RUNS: usize = 48;

/// Verdict codes inside row buffers; `UNKNOWN` is "let the walk decide".
pub(crate) const UNKNOWN: u8 = 0;
pub(crate) const HIT: u8 = 1;
pub(crate) const COLD: u8 = 2;
pub(crate) const REPL: u8 = 3;

fn decode(code: u8) -> Option<Verdict> {
    match code {
        HIT => Some(Verdict::Hit),
        COLD => Some(Verdict::Cold),
        REPL => Some(Verdict::Replacement),
        _ => None,
    }
}

/// One row's verdicts in compressed tier form.
#[derive(Debug, Clone, PartialEq, Eq)]
enum RowRep {
    /// Every point of the row has this code.
    Uniform(u8),
    /// Run-length segments `(last v of run, code)`, ascending.
    Runs(Vec<(i64, u8)>),
    /// The congruence tier: codes repeat with `period`; one period is
    /// stored as segments `(last offset of run, code)`.
    Periodic {
        period: i64,
        pattern: Vec<(i64, u8)>,
    },
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Row {
    lo: i64,
    hi: i64,
    rep: RowRep,
}

/// The pre-pass verdict map of one reference: rows in lexicographic order,
/// each holding a compressed verdict tier over its contiguous `v` range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefVerdicts {
    /// Outer-prefix length (`depth − 1`).
    nprefix: usize,
    /// Row prefixes, `nprefix` entries per row, same order as `rows`.
    prefixes: Vec<i64>,
    rows: Vec<Row>,
    resolved: u64,
    total: u64,
}

impl RefVerdicts {
    /// A map that resolves nothing (used for depth-0 programs).
    fn unresolved(nprefix: usize, total: u64) -> RefVerdicts {
        RefVerdicts {
            nprefix,
            prefixes: Vec::new(),
            rows: Vec::new(),
            resolved: 0,
            total,
        }
    }

    /// Points with a definite verdict.
    pub fn resolved(&self) -> u64 {
        self.resolved
    }

    /// Points in the reference's RIS.
    pub fn total(&self) -> u64 {
        self.total
    }

    fn prefix_of(&self, i: usize) -> &[i64] {
        &self.prefixes[i * self.nprefix..(i + 1) * self.nprefix]
    }

    /// Whether row `i` ends strictly before `(pfx, v)` in lex order.
    fn row_before(&self, i: usize, pfx: &[i64], v: i64) -> bool {
        match self.prefix_of(i).cmp(pfx) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => self.rows[i].hi < v,
        }
    }

    /// Positions a cursor at the first row not ending before `point` —
    /// the right starting cursor for a lex-ordered scan beginning there.
    pub fn cursor_at(&self, point: &[i64]) -> usize {
        if self.rows.is_empty() {
            return 0;
        }
        let (pfx, rest) = point.split_at(self.nprefix);
        let v = rest[0];
        let (mut lo, mut hi) = (0usize, self.rows.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.row_before(mid, pfx, v) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// The verdict at `point`, or `None` when the exact walk must decide.
    ///
    /// `cursor` is advanced monotonically; feed points in lexicographic
    /// order (initialising the cursor with [`RefVerdicts::cursor_at`] when
    /// starting mid-stream) for amortised-constant lookups.
    pub fn lookup(&self, point: &[i64], cursor: &mut usize) -> Option<Verdict> {
        if self.rows.is_empty() {
            return None;
        }
        let (pfx, rest) = point.split_at(self.nprefix);
        let v = rest[0];
        while *cursor < self.rows.len() && self.row_before(*cursor, pfx, v) {
            *cursor += 1;
        }
        let i = *cursor;
        if i >= self.rows.len() {
            return None;
        }
        let row = &self.rows[i];
        if row.lo <= v && v <= row.hi && self.prefix_of(i) == pfx {
            decode(row_code(&row.rep, row.lo, v))
        } else {
            None
        }
    }

    fn push_row(&mut self, prefix: &[i64], lo: i64, hi: i64, buf: &[u8]) {
        let rep = compress(buf, lo);
        self.resolved += match rep {
            // Degraded rows resolve nothing; every other tier reproduces
            // the buffer exactly, so counting the buffer is counting the
            // points classification will skip.
            RowRep::Uniform(UNKNOWN) => 0,
            _ => buf.iter().filter(|&&c| c != UNKNOWN).count() as u64,
        };
        self.prefixes.extend_from_slice(prefix);
        self.rows.push(Row { lo, hi, rep });
    }
}

/// The code at absolute position `v` of a row starting at `lo`.
fn row_code(rep: &RowRep, lo: i64, v: i64) -> u8 {
    match rep {
        RowRep::Uniform(c) => *c,
        RowRep::Runs(runs) => runs[runs.partition_point(|&(end, _)| end < v)].1,
        RowRep::Periodic { period, pattern } => {
            let off = (v - lo).rem_euclid(*period);
            pattern[pattern.partition_point(|&(end, _)| end < off)].1
        }
    }
}

/// Run-length encodes `buf` as `(base + last index of run, code)` segments.
fn rle(buf: &[u8], base: i64) -> Vec<(i64, u8)> {
    let mut runs = Vec::new();
    for (i, &c) in buf.iter().enumerate() {
        match runs.last_mut() {
            Some((end, code)) if *code == c => *end = base + i as i64,
            _ => runs.push((base + i as i64, c)),
        }
    }
    runs
}

fn count_runs(buf: &[u8]) -> usize {
    1 + buf.windows(2).filter(|w| w[0] != w[1]).count()
}

/// The minimal weak period of `s` via the KMP failure function: the border
/// property gives `s[i] = s[i + p]` for all valid `i`, hence
/// `s[i] = s[i mod p]`.
fn weak_period(s: &[u8]) -> usize {
    let len = s.len();
    let mut fail = vec![0usize; len];
    let mut k = 0usize;
    for i in 1..len {
        while k > 0 && s[i] != s[k] {
            k = fail[k - 1];
        }
        if s[i] == s[k] {
            k += 1;
        }
        fail[i] = k;
    }
    len - fail[len - 1]
}

/// Compresses one row buffer into a tier, degrading to uniformly unknown
/// when no compact range representation exists.
fn compress(buf: &[u8], lo: i64) -> RowRep {
    let first = buf[0];
    if buf.iter().all(|&c| c == first) {
        return RowRep::Uniform(first);
    }
    if count_runs(buf) <= MAX_ROW_RUNS {
        return RowRep::Runs(rle(buf, lo));
    }
    let p = weak_period(buf);
    if p <= buf.len() / 2 && count_runs(&buf[..p]) <= MAX_ROW_RUNS {
        return RowRep::Periodic {
            period: p as i64,
            pattern: rle(&buf[..p], 0),
        };
    }
    RowRep::Uniform(UNKNOWN)
}

/// Static (row-independent) per-vector context.
pub(crate) struct VecStatic<'p> {
    pub(crate) vector: &'p [i64],
    pub(crate) producer_rank: usize,
    pub(crate) paddr: &'p Affine,
    pub(crate) pconstraints: &'p [Constraint],
    pub(crate) pbbox: &'p [(i64, i64)],
    pub(crate) p_empty: bool,
    /// Innermost component of the vector.
    pub(crate) dv: i64,
    /// All components above the innermost index are zero: the interference
    /// interval stays inside one row of the innermost loop.
    pub(crate) intra_row: bool,
}

/// Per-`(row, vector)` applicability: the exact set of `v` where the cold
/// equations leave this vector applicable, as an interval minus holes.
pub(crate) struct VecRow {
    pub(crate) excluded: bool,
    pub(crate) alo: i64,
    pub(crate) ahi: i64,
    /// `v` values excluded by `≠` constraints (rare; usually empty).
    pub(crate) ne: Vec<i64>,
    /// Producer byte address at consumer index `v`: `pbase + pstride·v`.
    pub(crate) pbase: i64,
    pub(crate) pstride: i64,
    /// Lazily computed row-uniform contention-bound result.
    pub(crate) bound: Option<bool>,
}

pub(crate) const EXCLUDED: VecRow = VecRow {
    excluded: true,
    alo: 0,
    ahi: -1,
    ne: Vec::new(),
    pbase: 0,
    pstride: 0,
    bound: None,
};

/// One statement of the innermost loop node, pre-resolved for window
/// evaluation.
pub(crate) struct RowStmt<'p> {
    pub(crate) guard: &'p [Constraint],
    /// `(lex_rank, address plan)` per reference, in statement order.
    pub(crate) refs: Vec<(usize, &'p Affine)>,
}

/// Builds the static per-vector contexts of one consumer, shared by the
/// pre-pass and the symbolic tier (identical construction keeps their
/// decisions aligned with the classifier's plan order).
pub(crate) fn vec_statics<'p>(
    program: &'p Program,
    plan: &ConsumerPlan<'p>,
    n: usize,
) -> Vec<VecStatic<'p>> {
    plan.vectors
        .iter()
        .map(|vp| {
            let pspace = program.ris(vp.producer);
            VecStatic {
                vector: vp.vector,
                producer_rank: vp.producer_rank,
                paddr: program.addr_plan(vp.producer),
                pconstraints: pspace.system().constraints(),
                pbbox: vp.producer_bbox,
                p_empty: pspace.known_empty(),
                dv: vp.vector[2 * n - 1],
                intra_row: vp.vector[..2 * n - 1].iter().all(|&x| x == 0),
            }
        })
        .collect()
}

/// Resolves the statements of the innermost loop node containing `label`,
/// for exact window evaluation.
pub(crate) fn leaf_row_stmts<'p>(program: &'p Program, label: &[i64]) -> Vec<RowStmt<'p>> {
    let leaf = *program
        .loop_path(label)
        .last()
        .expect("statement at depth >= 1 has a loop path");
    leaf.stmts
        .iter()
        .map(|&sid| {
            let s = program.statement(sid);
            RowStmt {
                guard: &s.guard,
                refs: s
                    .refs
                    .iter()
                    .map(|&rid| (program.reference(rid).lex_rank, program.addr_plan(rid)))
                    .collect(),
            }
        })
        .collect()
}

/// Reduces every producer-side screen to the 1-D domain of the row.
///
/// The reduction mirrors the classifier exactly: the bounding-box
/// pre-screen, then each RIS constraint evaluated with all variables but
/// the innermost fixed. `u = v − dv` is the producer's innermost index.
pub(crate) fn build_vec_row(
    vs: &VecStatic<'_>,
    prefix: &[i64],
    lo: i64,
    hi: i64,
    pprefix: &mut [i64],
) -> VecRow {
    if vs.p_empty {
        return EXCLUDED;
    }
    let nprefix = prefix.len();
    for (d, p) in pprefix.iter_mut().enumerate() {
        *p = prefix[d] - vs.vector[2 * d + 1];
    }
    let (mut ulo, mut uhi) = (lo - vs.dv, hi - vs.dv);
    for (d, &(blo, bhi)) in vs.pbbox.iter().enumerate() {
        if d < nprefix {
            if pprefix[d] < blo || pprefix[d] > bhi {
                return EXCLUDED;
            }
        } else {
            ulo = ulo.max(blo);
            uhi = uhi.min(bhi);
        }
    }
    let mut ne: Vec<i64> = Vec::new();
    for c in vs.pconstraints {
        let a = c.expr.coeff(nprefix);
        let mut rest = c.expr.constant_term();
        for (d, &pp) in pprefix.iter().enumerate().take(nprefix) {
            rest += c.expr.coeff(d) * pp;
        }
        // The constraint is `a·u + rest ⋈ 0` on the row.
        match c.kind {
            ConstraintKind::Ge => {
                if a == 0 {
                    if rest < 0 {
                        return EXCLUDED;
                    }
                } else if a > 0 {
                    ulo = ulo.max(div_ceil(-rest, a));
                } else {
                    uhi = uhi.min(div_floor(-rest, a));
                }
            }
            ConstraintKind::Eq => {
                if a == 0 {
                    if rest != 0 {
                        return EXCLUDED;
                    }
                } else if rest % a == 0 {
                    let u0 = -rest / a;
                    ulo = ulo.max(u0);
                    uhi = uhi.min(u0);
                } else {
                    return EXCLUDED;
                }
            }
            ConstraintKind::Ne => {
                if a == 0 {
                    if rest == 0 {
                        return EXCLUDED;
                    }
                } else if rest % a == 0 {
                    ne.push(-rest / a + vs.dv);
                }
            }
        }
    }
    if ulo > uhi {
        return EXCLUDED;
    }
    let mut pbase = vs.paddr.constant_term();
    for (d, &pp) in pprefix.iter().enumerate().take(nprefix) {
        pbase += vs.paddr.coeff(d) * pp;
    }
    let pstride = vs.paddr.coeff(nprefix);
    pbase -= pstride * vs.dv;
    VecRow {
        excluded: false,
        alo: ulo + vs.dv,
        ahi: uhi + vs.dv,
        ne,
        pbase,
        pstride,
        bound: None,
    }
}

/// Evaluates one intra-row interference window exactly, in the walk's
/// visit order (iterations descending, statements and references in
/// reverse, guards honoured, boundary ranks filtered), returning the code
/// the classifier's walk would return.
#[allow(clippy::too_many_arguments)]
pub(crate) fn window_eval(
    config: &CacheConfig,
    row_stmts: &[RowStmt<'_>],
    idx: &mut [i64],
    v: i64,
    dv: i64,
    reused_line: i64,
    producer_rank: usize,
    consumer_rank: usize,
    k: usize,
    lines: &mut Vec<i64>,
) -> u8 {
    let n = idx.len();
    let target_set = config.set_of_line(reused_line);
    lines.clear();
    let mut w = v;
    loop {
        idx[n - 1] = w;
        let at_start = w == v - dv;
        let at_end = w == v;
        for s in row_stmts.iter().rev() {
            if !s.guard.iter().all(|c| c.holds(idx)) {
                continue;
            }
            for &(rank, plan) in s.refs.iter().rev() {
                if at_start && rank <= producer_rank {
                    continue;
                }
                if at_end && rank >= consumer_rank {
                    continue;
                }
                let line = config.mem_line(plan.eval(idx));
                if line == reused_line {
                    // Re-touch with fewer than k distinct contentions
                    // since: the line survived.
                    return HIT;
                }
                if config.set_of_line(line) != target_set {
                    continue;
                }
                if !lines.contains(&line) {
                    lines.push(line);
                    if lines.len() >= k {
                        return REPL;
                    }
                }
            }
        }
        if at_start {
            break;
        }
        w -= 1;
    }
    HIT
}

/// Runs the pre-pass for one reference: segments its RIS into rows, decides
/// each point through the exact 1-D screens, and compresses the verdicts
/// into tiers. Checked against `cancel` every [`CANCEL_GRAIN`] points.
pub fn analyze_reference(
    cl: &Classifier<'_>,
    r: RefId,
    cancel: &CancelToken,
) -> Result<RefVerdicts, Cancelled> {
    let program = cl.program();
    let config = cl.config();
    let n = program.depth();
    let ris = program.ris(r);
    let total = ris.count();
    if n == 0 || total == 0 {
        return Ok(RefVerdicts::unresolved(n.saturating_sub(1), total));
    }
    let nprefix = n - 1;
    let plan = cl.plan(r);
    let consumer_rank = plan.consumer_rank;
    let label = &program.statement(program.reference(r).stmt).label;
    let caddr = program.addr_plan(r);
    let k = config.assoc() as usize;

    let statics: Vec<VecStatic<'_>> = vec_statics(program, plan, n);

    // The innermost loop node's statements, for exact window evaluation.
    let row_stmts: Vec<RowStmt<'_>> = leaf_row_stmts(program, label);
    let row_accesses: usize = row_stmts.iter().map(|s| s.refs.len()).sum::<usize>().max(1);

    // Segment the RIS into rows: maximal runs of consecutive innermost
    // values at a fixed prefix (≠ holes and guard edges split rows).
    let mut raw: Vec<(Vec<i64>, i64, i64)> = Vec::new();
    ris.for_each_point(|p| {
        let v = p[nprefix];
        match raw.last_mut() {
            Some((pfx, _, hi)) if *hi + 1 == v && pfx.as_slice() == &p[..nprefix] => *hi = v,
            _ => raw.push((p[..nprefix].to_vec(), v, v)),
        }
    });

    let mut out = RefVerdicts {
        nprefix,
        prefixes: Vec::with_capacity(raw.len() * nprefix),
        rows: Vec::with_capacity(raw.len()),
        resolved: 0,
        total,
    };
    let mut buf: Vec<u8> = Vec::new();
    let mut vrows: Vec<VecRow> = Vec::new();
    let mut pprefix = vec![0i64; nprefix];
    let mut idx = vec![0i64; n];
    let mut lines: Vec<i64> = Vec::new();
    let mut from_buf = vec![0i64; 2 * n];
    let mut to_buf = vec![0i64; 2 * n];
    let mut since_check = 0u64;

    for (prefix, lo, hi) in &raw {
        let (lo, hi) = (*lo, *hi);
        let mut cbase = caddr.constant_term();
        for (d, &p) in prefix.iter().enumerate().take(nprefix) {
            cbase += caddr.coeff(d) * p;
        }
        let cstride = caddr.coeff(nprefix);
        idx[..nprefix].copy_from_slice(prefix);

        // Vector rows are reduced lazily: most points decide at an early
        // vector, so later vectors' 1-D reductions are usually never built.
        vrows.clear();

        buf.clear();
        for v in lo..=hi {
            since_check += 1;
            if since_check >= CANCEL_GRAIN {
                since_check = 0;
                if cancel.is_cancelled() {
                    return Err(Cancelled { points_done: 0 });
                }
            }
            let line_c = config.mem_line(cbase + cstride * v);
            let mut code = COLD;
            for vi in 0..statics.len() {
                if vi == vrows.len() {
                    vrows.push(build_vec_row(&statics[vi], prefix, lo, hi, &mut pprefix));
                }
                let vr = &mut vrows[vi];
                if vr.excluded
                    || v < vr.alo
                    || v > vr.ahi
                    || (!vr.ne.is_empty() && vr.ne.contains(&v))
                {
                    continue;
                }
                if config.mem_line(vr.pbase + vr.pstride * v) != line_c {
                    continue;
                }
                // The first applicable vector decides, as in the
                // classifier. Try the O(1) row-uniform bound first, then
                // the exact window for intra-row vectors.
                let vs = &statics[vi];
                if vr.bound.is_none() {
                    for d in 0..n {
                        to_buf[2 * d] = label[d];
                        to_buf[2 * d + 1] = if d < nprefix { prefix[d] } else { hi };
                    }
                    for (pos, f) in from_buf.iter_mut().enumerate() {
                        *f = to_buf[pos] - vs.vector[pos];
                    }
                    from_buf[2 * n - 1] = lo - vs.dv;
                    vr.bound = Some(cl.row_contention_hit(&from_buf, &to_buf));
                }
                code = if vr.bound == Some(true) {
                    HIT
                } else if vs.intra_row
                    && vs.dv >= 0
                    && (vs.dv as usize + 1).saturating_mul(row_accesses) <= WINDOW_BUDGET
                {
                    window_eval(
                        config,
                        &row_stmts,
                        &mut idx,
                        v,
                        vs.dv,
                        line_c,
                        vs.producer_rank,
                        consumer_rank,
                        k,
                        &mut lines,
                    )
                } else {
                    UNKNOWN
                };
                break;
            }
            buf.push(code);
        }
        out.push_row(prefix, lo, hi, &buf);
    }
    Ok(out)
}

/// The pre-pass for a whole program: one [`RefVerdicts`] per reference.
#[derive(Debug, Clone)]
pub struct Prepass {
    per_ref: Vec<RefVerdicts>,
}

impl Prepass {
    /// Runs [`analyze_reference`] for every reference of the classifier's
    /// program.
    pub fn build(cl: &Classifier<'_>, cancel: &CancelToken) -> Result<Prepass, Cancelled> {
        let nrefs = cl.program().references().len();
        let mut per_ref = Vec::with_capacity(nrefs);
        for r in 0..nrefs {
            per_ref.push(analyze_reference(cl, r, cancel)?);
        }
        Ok(Prepass { per_ref })
    }

    /// The verdict map of one reference.
    pub fn reference(&self, r: RefId) -> &RefVerdicts {
        &self.per_ref[r]
    }

    /// Points resolved across all references.
    pub fn resolved_points(&self) -> u64 {
        self.per_ref.iter().map(RefVerdicts::resolved).sum()
    }

    /// Points in all RISs.
    pub fn total_points(&self) -> u64 {
        self.per_ref.iter().map(RefVerdicts::total).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{PointClass, Scratch};
    use cme_ir::{LinExpr, Program, ProgramBuilder, SNode, SRef};
    use cme_reuse::ReuseAnalysis;

    #[test]
    fn weak_period_finds_minimal_periods() {
        assert_eq!(weak_period(&[1, 2, 1, 2, 1, 2]), 2);
        assert_eq!(weak_period(&[1, 2, 3, 1, 2, 3, 1, 2]), 3);
        assert_eq!(weak_period(&[1, 1, 1, 1]), 1);
        assert_eq!(weak_period(&[1, 2, 3, 4]), 4);
    }

    #[test]
    fn compression_reproduces_buffers() {
        // Uniform, runs, periodic and degraded cases.
        let uniform = vec![HIT; 100];
        let runs: Vec<u8> = (0..100).map(|i| if i < 37 { COLD } else { HIT }).collect();
        let periodic: Vec<u8> = (0..200)
            .map(|i| if i % 4 == 0 { COLD } else { HIT })
            .collect();
        for (buf, lo) in [(&uniform, 5i64), (&runs, -3), (&periodic, 11)] {
            let rep = compress(buf, lo);
            assert_ne!(rep, RowRep::Uniform(UNKNOWN), "should not degrade");
            for (i, &c) in buf.iter().enumerate() {
                assert_eq!(row_code(&rep, lo, lo + i as i64), c, "index {i}");
            }
        }
        // An aperiodic high-entropy buffer degrades to unknown.
        let noisy: Vec<u8> = (0..400u32)
            .map(|i| [HIT, COLD, REPL, UNKNOWN][(i * i % 97 % 4) as usize])
            .collect();
        if count_runs(&noisy) > MAX_ROW_RUNS {
            assert_eq!(compress(&noisy, 0), RowRep::Uniform(UNKNOWN));
        }
    }

    fn stream_program() -> Program {
        let mut b = ProgramBuilder::new("stream");
        b.array("A", &[64], 8);
        b.push(SNode::loop_(
            "I",
            1,
            64,
            vec![SNode::reads_only(vec![SRef::new(
                "A",
                vec![LinExpr::var("I")],
            )])],
        ));
        b.build().unwrap()
    }

    /// The core contract: wherever the pre-pass resolves a point, its
    /// verdict equals the classifier's.
    fn assert_matches_classifier(program: &Program, cfg: CacheConfig) -> (u64, u64) {
        let reuse = ReuseAnalysis::analyze(program, cfg.line_bytes());
        let cl = Classifier::new(program, &reuse, cfg);
        let mut scratch = Scratch::new();
        let (mut resolved, mut total) = (0u64, 0u64);
        for r in 0..program.references().len() {
            let vd = analyze_reference(&cl, r, &CancelToken::never()).unwrap();
            let mut cursor = 0usize;
            program.ris(r).for_each_point(|p| {
                total += 1;
                if let Some(v) = vd.lookup(p, &mut cursor) {
                    resolved += 1;
                    let class = cl.classify_with_scratch(r, p, &mut scratch);
                    let want = match class {
                        PointClass::Hit { .. } => Verdict::Hit,
                        PointClass::Cold => Verdict::Cold,
                        PointClass::ReplacementMiss { .. } => Verdict::Replacement,
                    };
                    assert_eq!(v, want, "ref {r} point {p:?}");
                }
            });
            assert_eq!(vd.total(), program.ris(r).count());
        }
        (resolved, total)
    }

    #[test]
    fn stream_fully_resolved_and_exact() {
        let p = stream_program();
        let cfg = CacheConfig::new(1024, 32, 1).unwrap();
        let (resolved, total) = assert_matches_classifier(&p, cfg);
        // A pure sequential scan is entirely decidable within rows.
        assert_eq!(resolved, total);
        assert_eq!(total, 64);
    }

    #[test]
    fn guarded_two_deep_nest_matches_classifier() {
        use cme_ir::{LinRel, RelOp};
        let n = 24i64;
        let mut b = ProgramBuilder::new("guarded");
        b.array("A", &[n, n], 8);
        b.array("B", &[n, n], 8);
        let (i, j) = (LinExpr::var("I"), LinExpr::var("J"));
        b.push(SNode::loop_(
            "J",
            2,
            n,
            vec![SNode::loop_(
                "I",
                1,
                n,
                vec![
                    SNode::assign(
                        SRef::new("A", vec![i.clone(), j.clone()]),
                        vec![SRef::new("A", vec![i.clone(), j.offset(-1)])],
                    ),
                    SNode::if_(
                        vec![LinRel::new(i.clone(), RelOp::Le, j.clone())],
                        vec![SNode::reads_only(vec![SRef::new(
                            "B",
                            vec![j.clone(), i.clone()],
                        )])],
                    ),
                ],
            )],
        ));
        let p = b.build().unwrap();
        for cfg in [
            CacheConfig::new(4096, 32, 2).unwrap(),
            CacheConfig::with_geometry(24, 12, 2).unwrap(),
        ] {
            let (resolved, total) = assert_matches_classifier(&p, cfg);
            assert!(resolved > 0, "cfg {cfg:?}: pre-pass resolved nothing");
            assert!(resolved <= total);
        }
    }

    #[test]
    fn cursor_lookup_matches_fresh_binary_search() {
        let p = stream_program();
        let cfg = CacheConfig::new(512, 32, 2).unwrap();
        let reuse = ReuseAnalysis::analyze(&p, cfg.line_bytes());
        let cl = Classifier::new(&p, &reuse, cfg);
        let vd = analyze_reference(&cl, 0, &CancelToken::never()).unwrap();
        let mut cursor = 0usize;
        p.ris(0).for_each_point(|pt| {
            let linear = vd.lookup(pt, &mut cursor);
            let mut fresh = vd.cursor_at(pt);
            assert_eq!(linear, vd.lookup(pt, &mut fresh), "point {pt:?}");
        });
    }

    #[test]
    fn cancelled_token_aborts_prepass() {
        let p = stream_program();
        let cfg = CacheConfig::new(1024, 32, 1).unwrap();
        let reuse = ReuseAnalysis::analyze(&p, cfg.line_bytes());
        let cl = Classifier::new(&p, &reuse, cfg);
        let cancel = CancelToken::new();
        cancel.cancel();
        // 64 points is under one cancel grain, so force many grains by
        // checking Prepass::build over an already-cancelled token on a
        // bigger space.
        let mut b = ProgramBuilder::new("big");
        b.array("X", &[128, 128], 8);
        let (i, j) = (LinExpr::var("I"), LinExpr::var("J"));
        b.push(SNode::loop_(
            "J",
            1,
            128,
            vec![SNode::loop_(
                "I",
                1,
                128,
                vec![SNode::reads_only(vec![SRef::new(
                    "X",
                    vec![i.clone(), j.clone()],
                )])],
            )],
        ));
        let big = b.build().unwrap();
        let reuse_big = ReuseAnalysis::analyze(&big, cfg.line_bytes());
        let cl_big = Classifier::new(&big, &reuse_big, cfg);
        assert!(Prepass::build(&cl_big, &cancel).is_err());
        // A never token always succeeds.
        assert!(Prepass::build(&cl, &CancelToken::never()).is_ok());
    }
}
