//! The parallel point-classification engine.
//!
//! Point classification is embarrassingly parallel — every iteration point
//! is classified independently and the per-reference tallies are sums of
//! `u64` counters — so the engine is built from two small, dependency-free
//! pieces:
//!
//! * [`ChunkQueue`] — an atomic work queue over task indices `0..n`. Workers
//!   *steal* the next index with one `fetch_add`; there is no per-task
//!   allocation, no channel, and contention is one cache line.
//! * [`run_chunked`] — spawns `threads` scoped workers
//!   (`std::thread::scope`, so borrowed data flows in without `Arc`), gives
//!   each worker one reusable state value (a [`crate::Scratch`] in the
//!   classification engines — the buffers warm up once per worker, not once
//!   per point), and returns the task results **sorted by task index**.
//!
//! # Determinism
//!
//! The engine guarantees byte-identical results for every thread count:
//!
//! * each task is a pure function of its index — which points a chunk
//!   covers, and (for sampling) the chunk's RNG seed, never depend on which
//!   worker ran it or in what order;
//! * the reduction is ordered: results are sorted by task index before
//!   merging, and the merged quantities are sums of `u64` counters, which
//!   are associative and commutative anyway.
//!
//! With `threads == 1` no worker is spawned at all — the caller's thread
//! runs every task in index order, which is exactly the legacy serial path.

use crate::cancel::CancelToken;
use crate::classify::{Classifier, PointClass, Scratch};
use crate::prepass::{RefVerdicts, Verdict};
use crate::report::Coverage;
use cme_ir::RefId;
use cme_poly::rng::{derive_seed, SeededRng};
use cme_poly::sample;
use cme_poly::space::Space;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Points per work chunk for exhaustive classification. Large enough that
/// queue traffic is negligible (one atomic op per ~1k classified points,
/// each of which costs a reuse-vector scan), small enough that mid-size
/// references still split into many chunks for load balance.
pub const CHUNK_POINTS: usize = 1024;

/// Samples per work chunk (and per RNG stream) in sampled classification.
/// Also the granularity of seed derivation: chunk `i` of a reference always
/// draws its quota from `derive_seed(ref_seed, i)`, so the sampled point
/// set is a function of the seed alone, not of the schedule.
pub const CHUNK_SAMPLES: u64 = 64;

/// An atomic chunk-stealing work queue over task indices `0..ntasks`.
///
/// Every index is handed out exactly once across all stealing threads.
#[derive(Debug)]
pub struct ChunkQueue {
    next: AtomicUsize,
    ntasks: usize,
}

impl ChunkQueue {
    /// A queue holding the indices `0..ntasks`.
    pub fn new(ntasks: usize) -> Self {
        ChunkQueue {
            next: AtomicUsize::new(0),
            ntasks,
        }
    }

    /// Takes the next unprocessed task index, or `None` when drained.
    pub fn steal(&self) -> Option<usize> {
        // Relaxed suffices: the index value itself carries the claim, and
        // the scope join provides the final happens-before edge.
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        if i < self.ntasks {
            Some(i)
        } else {
            None
        }
    }
}

/// Runs `ntasks` indexed tasks on up to `threads` workers and returns the
/// results in task-index order.
///
/// Each worker owns one `state` value produced by `make_state` and reuses
/// it across every task it steals (shared-scratch execution). `threads <= 1`
/// (or a single task) runs everything on the calling thread with no spawns.
pub fn run_chunked<S, T, MS, F>(threads: usize, ntasks: usize, make_state: MS, task: F) -> Vec<T>
where
    T: Send,
    MS: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    run_chunked_cancellable(threads, ntasks, &CancelToken::never(), make_state, task)
        .expect("never-token runs cannot be cancelled")
}

/// Cancellable [`run_chunked`]: the token is checked once per task steal
/// (per chunk, not per point). Returns `None` when cancellation fired before
/// the queue drained — partial results are discarded, each worker stops
/// after at most the task it is currently running.
pub fn run_chunked_cancellable<S, T, MS, F>(
    threads: usize,
    ntasks: usize,
    cancel: &CancelToken,
    make_state: MS,
    task: F,
) -> Option<Vec<T>>
where
    T: Send,
    MS: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    if threads <= 1 || ntasks <= 1 {
        let mut state = make_state();
        let mut out = Vec::with_capacity(ntasks);
        for i in 0..ntasks {
            if cancel.is_cancelled() {
                return None;
            }
            out.push(task(&mut state, i));
        }
        return Some(out);
    }
    let queue = ChunkQueue::new(ntasks);
    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(ntasks));
    let nworkers = threads.min(ntasks);
    std::thread::scope(|scope| {
        for _ in 0..nworkers {
            scope.spawn(|| {
                let mut state = make_state();
                let mut local: Vec<(usize, T)> = Vec::new();
                while !cancel.is_cancelled() {
                    let Some(i) = queue.steal() else { break };
                    local.push((i, task(&mut state, i)));
                }
                results.lock().unwrap().extend(local);
            });
        }
    });
    if cancel.is_cancelled() {
        return None;
    }
    let mut v = results.into_inner().unwrap();
    v.sort_unstable_by_key(|&(i, _)| i);
    Some(v.into_iter().map(|(_, t)| t).collect())
}

/// Per-chunk classification tally; the merged quantity of the reduction.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Tally {
    /// Cold misses.
    pub cold: u64,
    /// Replacement misses.
    pub replacement: u64,
    /// Hits.
    pub hits: u64,
}

impl Tally {
    /// Counts one verdict.
    pub fn bump(&mut self, class: PointClass) {
        match class {
            PointClass::Cold => self.cold += 1,
            PointClass::ReplacementMiss { .. } => self.replacement += 1,
            PointClass::Hit { .. } => self.hits += 1,
        }
    }

    /// Counts one pre-pass verdict. A resolved point contributes exactly
    /// the increment its [`PointClass`] would (the tally never records
    /// which vector decided), so consulting the pre-pass changes no report.
    pub fn bump_verdict(&mut self, v: Verdict) {
        match v {
            Verdict::Cold => self.cold += 1,
            Verdict::Replacement => self.replacement += 1,
            Verdict::Hit => self.hits += 1,
        }
    }

    /// Adds another tally into this one.
    pub fn merge(&mut self, other: Tally) {
        self.cold += other.cold;
        self.replacement += other.replacement;
        self.hits += other.hits;
    }

    /// Points counted so far.
    pub fn analyzed(&self) -> u64 {
        self.cold + self.replacement + self.hits
    }
}

/// Classifies every point of `RIS_r` on `threads` workers.
///
/// The point stream is materialised into a flat row-major buffer (serial
/// enumeration is a tiny fraction of classification cost), split into
/// [`CHUNK_POINTS`]-sized chunks and reduced in chunk order. Small spaces
/// take the serial path directly.
///
/// When pre-pass `verdicts` are supplied, resolved points skip the
/// interference walk and bump the tally directly. The chunk layout, the
/// cancellation checks and the index-ordered reduction still cover the
/// full index space, and resolved points count exactly what the walk
/// would, so reports stay byte-identical with or without verdicts.
pub(crate) fn classify_exhaustive(
    classifier: &Classifier<'_>,
    r: RefId,
    ris: &Space,
    threads: usize,
    cancel: &CancelToken,
    verdicts: Option<&RefVerdicts>,
) -> Option<Tally> {
    let dim = classifier.program().depth();
    let serial_tally = || {
        let mut tally = Tally::default();
        let mut scratch = Scratch::new();
        let mut cursor = 0usize;
        ris.for_each_point(
            |point| match verdicts.and_then(|v| v.lookup(point, &mut cursor)) {
                Some(v) => tally.bump_verdict(v),
                None => tally.bump(classifier.classify_with_scratch(r, point, &mut scratch)),
            },
        );
        tally
    };
    // The non-cancellable serial paths stay allocation-free exactly as
    // before; a live token always goes through the chunked route so the
    // per-chunk checks happen even on one thread.
    if (threads <= 1 || dim == 0) && !cancel.can_cancel() {
        return Some(serial_tally());
    }
    if dim == 0 {
        if cancel.is_cancelled() {
            return None;
        }
        return Some(serial_tally());
    }
    let (flat, npoints) = classifier.program().flat_ris(r);
    if npoints <= CHUNK_POINTS && !cancel.can_cancel() {
        return Some(serial_tally());
    }
    let nchunks = npoints.div_ceil(CHUNK_POINTS).max(1);
    let tallies =
        run_chunked_cancellable(threads, nchunks, cancel, Scratch::new, |scratch, ci| {
            let lo = ci * CHUNK_POINTS;
            let hi = npoints.min(lo + CHUNK_POINTS);
            let mut tally = Tally::default();
            // Chunks are contiguous lex ranges, so one binary search positions
            // the verdict cursor and the per-point lookups advance linearly.
            let mut cursor = verdicts.map_or(0, |v| v.cursor_at(&flat[lo * dim..(lo + 1) * dim]));
            for point in flat[lo * dim..hi * dim].chunks_exact(dim) {
                match verdicts.and_then(|v| v.lookup(point, &mut cursor)) {
                    Some(v) => tally.bump_verdict(v),
                    None => tally.bump(classifier.classify_with_scratch(r, point, scratch)),
                }
            }
            tally
        })?;
    let mut total = Tally::default();
    for t in tallies {
        total.merge(t);
    }
    Some(total)
}

/// Classifies a deterministic uniform sample of `RIS_r` on `threads`
/// workers.
///
/// The quota is split into [`CHUNK_SAMPLES`]-sized chunks; chunk `i` draws
/// its points from a fresh RNG seeded with `derive_seed(ref_seed, i)`. The
/// sampled point set is therefore a function of `(ref_seed, nsamples)`
/// alone — byte-identical for every thread count, including 1.
pub(crate) fn classify_sampled(
    classifier: &Classifier<'_>,
    r: RefId,
    ris: &Space,
    nsamples: u64,
    ref_seed: u64,
    threads: usize,
    cancel: &CancelToken,
) -> Option<(Tally, Coverage)> {
    let nchunks = nsamples.div_ceil(CHUNK_SAMPLES) as usize;
    let results =
        run_chunked_cancellable(threads, nchunks, cancel, Scratch::new, |scratch, ci| {
            let lo = ci as u64 * CHUNK_SAMPLES;
            let quota = CHUNK_SAMPLES.min(nsamples - lo) as usize;
            let mut rng = SeededRng::seed_from_u64(derive_seed(ref_seed, ci as u64));
            let points = sample::sample_points(ris, &mut rng, quota, sample::DEFAULT_MAX_TRIALS);
            let mut tally = Tally::default();
            for point in &points {
                tally.bump(classifier.classify_with_scratch(r, point, scratch));
            }
            (tally, points.len() as u64)
        })?;
    let mut total = Tally::default();
    let mut samples = 0u64;
    for (t, n) in results {
        total.merge(t);
        samples += n;
    }
    Some((total, Coverage::Sampled { samples }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    /// Every index is handed out exactly once even under heavy contention.
    #[test]
    fn queue_processes_every_index_exactly_once() {
        const NTASKS: usize = 10_000;
        const NTHREADS: usize = 8;
        let queue = ChunkQueue::new(NTASKS);
        let seen: Mutex<Vec<usize>> = Mutex::new(Vec::with_capacity(NTASKS));
        std::thread::scope(|scope| {
            for _ in 0..NTHREADS {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    while let Some(i) = queue.steal() {
                        local.push(i);
                    }
                    seen.lock().unwrap().extend(local);
                });
            }
        });
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), NTASKS, "index count");
        let unique: HashSet<usize> = seen.iter().copied().collect();
        assert_eq!(unique.len(), NTASKS, "duplicate indices");
        assert!(unique.iter().all(|&i| i < NTASKS));
        // Drained queue keeps returning None.
        assert_eq!(queue.steal(), None);
        assert_eq!(queue.steal(), None);
    }

    /// Results come back in task order regardless of scheduling, and every
    /// worker state observes only its own tasks.
    #[test]
    fn run_chunked_is_ordered_and_complete() {
        for threads in [1usize, 2, 4, 8] {
            let out = run_chunked(
                threads,
                129,
                || 0u64,
                |state, i| {
                    *state += 1;
                    (i as u64) * 3
                },
            );
            assert_eq!(out.len(), 129, "threads={threads}");
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, (i as u64) * 3, "threads={threads} index {i}");
            }
        }
    }

    /// Worker states are created once per worker, not once per task.
    #[test]
    fn states_are_shared_across_tasks() {
        let created = AtomicU64::new(0);
        let out = run_chunked(
            4,
            64,
            || {
                created.fetch_add(1, Ordering::Relaxed);
            },
            |_, i| i,
        );
        assert_eq!(out.len(), 64);
        let n = created.load(Ordering::Relaxed);
        assert!(n <= 4, "created {n} states for 4 workers");
    }

    /// Zero tasks is fine (no spawns, empty result).
    #[test]
    fn empty_queue() {
        let out = run_chunked(8, 0, || (), |_, i| i);
        assert!(out.is_empty());
        assert_eq!(ChunkQueue::new(0).steal(), None);
    }

    #[test]
    fn tally_merge_adds() {
        let mut a = Tally {
            cold: 1,
            replacement: 2,
            hits: 3,
        };
        a.merge(Tally {
            cold: 10,
            replacement: 20,
            hits: 30,
        });
        assert_eq!(a.analyzed(), 66);
        a.bump(PointClass::Cold);
        a.bump(PointClass::Hit { vector_idx: 0 });
        assert_eq!(a.cold, 12);
        assert_eq!(a.hits, 34);
    }
}
