//! Point classification: the cold and replacement equations (§4.1).
//!
//! For a consumer reference `R_c` at iteration `i`, the reuse vectors of
//! `R_c` are tried in increasing lexicographic order. Along a vector `r`
//! from producer `R_p`:
//!
//! * the **cold equations** (§4.1.1) leave the point *indeterminate* when
//!   `i − r ∉ RIS_p` or the two accesses touch different memory lines —
//!   the next vector is tried;
//! * otherwise the **replacement equations** (§4.1.2) decide: the point is
//!   a hit unless `k` *distinct* memory lines mapping to the reused line's
//!   cache set are accessed in the interference interval between `i − r`
//!   and `i` (LRU in a `k`-way set needs `k` distinct contentions to evict).
//!
//! The interval's ends are open or closed per lexical position: an access at
//! `i − r` intervenes only if its reference is lexically *after* `R_p`; one
//! at `i` only if lexically *before* `R_c`.
//!
//! Points indeterminate after every vector are cold misses.
//!
//! Per-reference invariants (producer bounding boxes, lexical ranks, the
//! vector list itself) are hoisted into [`Classifier::new`] so the per-point
//! loop touches only flat precomputed slices, and callers on hot paths can
//! supply a reusable [`Scratch`] via [`Classifier::classify_with_scratch`]
//! to avoid per-point allocation entirely.

use cme_cache::CacheConfig;
use cme_ir::{Program, RefId, SetFilter, SetWalker};
use cme_reuse::ReuseAnalysis;
use std::ops::ControlFlow;

/// How the replacement equations enumerate the interference interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WalkStrategy {
    /// The set-conscious walk: per-reference line plans, congruence-based
    /// set skipping and the contention-bound early exit. The default.
    #[default]
    SetSkip,
    /// The pre-plan full interval scan (`walk_range_rev` over every access,
    /// filtering by set in the callback). Kept as the reference
    /// implementation; verdicts are bit-identical to [`WalkStrategy::SetSkip`].
    LegacyScan,
}

/// The verdict for one iteration point of one reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointClass {
    /// No reuse vector supplied the line: first touch of the memory line.
    Cold,
    /// Reuse existed along the vector at the given position in the sorted
    /// list, but ≥ k distinct set contentions evicted the line.
    ReplacementMiss {
        /// Index into the consumer's sorted vector list.
        vector_idx: usize,
    },
    /// The line survived: a cache hit.
    Hit {
        /// Index into the consumer's sorted vector list.
        vector_idx: usize,
    },
}

impl PointClass {
    /// Whether the point is a miss of either kind.
    pub fn is_miss(&self) -> bool {
        !matches!(self, PointClass::Hit { .. })
    }
}

/// Reusable per-worker buffers for [`Classifier::classify_with_scratch`].
///
/// `classify` allocates these afresh on every call; a hot loop (exact
/// analysis visits every iteration point) should construct one `Scratch`
/// per thread and pass it to `classify_with_scratch` instead. Buffers grow
/// on demand, so one scratch serves programs of any depth.
#[derive(Debug, Default, Clone)]
pub struct Scratch {
    /// The consumer's interleaved iteration vector (2n entries).
    i_vec: Vec<i64>,
    /// `i − r`, interleaved label/index form (2n entries).
    prev: Vec<i64>,
    /// Index part of `i − r` (n entries).
    prev_idx: Vec<i64>,
    /// Distinct contending lines seen in the interference interval.
    lines: Vec<i64>,
    /// Reusable state for the set-skipping interference walk.
    walker: SetWalker,
}

impl Scratch {
    /// Creates an empty scratch; buffers size themselves on first use.
    pub fn new() -> Self {
        Scratch::default()
    }
}

/// Precomputed per-vector invariants: everything the cold equations need
/// that does not depend on the iteration point. Shared with the pre-pass
/// (`crate::prepass`), which reduces the same screens to one dimension.
#[derive(Debug, Clone)]
pub(crate) struct VectorPlan<'p> {
    pub(crate) producer: RefId,
    /// The reuse vector in interleaved label/index form (2n entries).
    pub(crate) vector: &'p [i64],
    /// Bounding box of `RIS_p`, for the cheap containment pre-screen.
    pub(crate) producer_bbox: &'p [(i64, i64)],
    pub(crate) producer_rank: usize,
}

/// All vectors of one consumer, in lexicographic order, plus its rank.
#[derive(Debug, Clone)]
pub(crate) struct ConsumerPlan<'p> {
    pub(crate) vectors: Vec<VectorPlan<'p>>,
    pub(crate) consumer_rank: usize,
}

/// Per-reference invariants of the contention bound: everything needed to
/// bound, in O(1) arithmetic per reference, how many distinct memory lines
/// the reference can map to one cache set inside an interference interval.
#[derive(Debug, Clone)]
struct RefBoundPlan<'p> {
    /// The owning statement's loop label vector (n entries).
    label: &'p [i64],
    /// Bounding box of the reference's RIS (n dims).
    bbox: &'p [(i64, i64)],
    /// The reference's byte-address affine form.
    plan: &'p cme_poly::Affine,
}

/// Shared state for classifying points of one program under one cache
/// geometry.
#[derive(Debug, Clone)]
pub struct Classifier<'p> {
    program: &'p Program,
    config: CacheConfig,
    /// One plan per reference, indexed by `RefId`.
    plans: Vec<ConsumerPlan<'p>>,
    /// One contention-bound plan per reference, indexed by `RefId`.
    bounds: Vec<RefBoundPlan<'p>>,
    walk: WalkStrategy,
}

impl<'p> Classifier<'p> {
    /// Creates a classifier; `reuse` must have been generated for the same
    /// program and the same line size as `config`.
    ///
    /// Construction hoists every per-reference invariant (producer bounding
    /// boxes, lexical ranks, vector slices) out of the per-point loop.
    pub fn new(program: &'p Program, reuse: &'p ReuseAnalysis, config: CacheConfig) -> Self {
        let plans = (0..program.references().len())
            .map(|r| ConsumerPlan {
                consumer_rank: program.reference(r).lex_rank,
                vectors: reuse
                    .for_consumer(r)
                    .map(|rv| VectorPlan {
                        producer: rv.producer,
                        vector: rv.vector.as_slice(),
                        producer_bbox: program.ris(rv.producer).bounding_box(),
                        producer_rank: program.reference(rv.producer).lex_rank,
                    })
                    .collect(),
            })
            .collect();
        let bounds = (0..program.references().len())
            .map(|r| RefBoundPlan {
                label: program
                    .statement(program.reference(r).stmt)
                    .label
                    .as_slice(),
                bbox: program.ris(r).bounding_box(),
                plan: program.addr_plan(r),
            })
            .collect();
        Classifier {
            program,
            config,
            plans,
            bounds,
            walk: WalkStrategy::default(),
        }
    }

    /// Selects the interference-walk strategy (default
    /// [`WalkStrategy::SetSkip`]). Verdicts are bit-identical for every
    /// strategy; [`WalkStrategy::LegacyScan`] exists as the reference
    /// implementation for differential testing.
    pub fn with_strategy(mut self, walk: WalkStrategy) -> Self {
        self.walk = walk;
        self
    }

    /// The program under analysis.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The consumer plan of reference `r` (for the pre-pass, which walks
    /// the same vectors in the same order).
    pub(crate) fn plan(&self, r: RefId) -> &ConsumerPlan<'p> {
        &self.plans[r]
    }

    /// Classifies the access of reference `r` at index point `point`
    /// (which must lie in `RIS_r`).
    ///
    /// Allocates fresh scratch buffers; hot loops should hold a [`Scratch`]
    /// and call [`Classifier::classify_with_scratch`].
    pub fn classify(&self, r: RefId, point: &[i64]) -> PointClass {
        let mut scratch = Scratch::new();
        self.classify_with_scratch(r, point, &mut scratch)
    }

    /// Classifies the access of reference `r` at index point `point`,
    /// reusing the caller's buffers. Allocation-free after warm-up; the
    /// workhorse of both the serial and parallel exact analyses.
    pub fn classify_with_scratch(
        &self,
        r: RefId,
        point: &[i64],
        scratch: &mut Scratch,
    ) -> PointClass {
        let program = self.program;
        let config = &self.config;
        let n = program.depth();
        // Interleave the statement label with the index point, reusing the
        // scratch buffer (the legacy path allocated a vector per point).
        scratch.i_vec.resize(2 * n, 0);
        let label = &program.statement(program.reference(r).stmt).label;
        for d in 0..n {
            scratch.i_vec[2 * d] = label[d];
            scratch.i_vec[2 * d + 1] = point[d];
        }
        let line_c = config.mem_line(program.byte_address(r, point));
        let plan = &self.plans[r];

        scratch.prev.resize(2 * n, 0);
        scratch.prev_idx.resize(n, 0);
        let Scratch {
            i_vec,
            prev,
            prev_idx,
            lines,
            walker,
        } = scratch;
        'vectors: for (vector_idx, vp) in plan.vectors.iter().enumerate() {
            // i − r, split back into label and index parts.
            for d in 0..2 * n {
                prev[d] = i_vec[d] - vp.vector[d];
            }
            for d in 0..n {
                prev_idx[d] = prev[2 * d + 1];
            }

            // Cold equations: producer instance must exist …
            for (d, &(lo, hi)) in vp.producer_bbox.iter().enumerate() {
                if prev_idx[d] < lo || prev_idx[d] > hi {
                    continue 'vectors; // cheap pre-screen
                }
            }
            if !program.ris(vp.producer).contains(prev_idx) {
                continue;
            }
            // … and touch the same memory line.
            let line_p = config.mem_line(program.byte_address(vp.producer, prev_idx));
            if line_p != line_c {
                continue;
            }

            // Replacement equations along this vector decide the point.
            let evicted = self.evicted_between(
                prev,
                i_vec,
                line_c,
                vp.producer_rank,
                plan.consumer_rank,
                lines,
                walker,
            );
            return if evicted {
                PointClass::ReplacementMiss { vector_idx }
            } else {
                PointClass::Hit { vector_idx }
            };
        }
        PointClass::Cold
    }

    /// Whether the reused line is evicted before the consumer access:
    /// scans the interference interval *backward* from `to`, counting
    /// distinct memory lines mapped to the reused line's cache set. The scan
    /// stops early at the first re-touch of the reused line (any access to
    /// it renews its LRU recency — fewer than `k` distinct contentions since
    /// then means the line survived) or at the `k`-th distinct contention
    /// (eviction proof). The producer's own access at `from` is the final
    /// implicit touch, so reaching it decides by the contention count.
    ///
    /// Interval ends honour the lexical rules of §4.1.2: an access at
    /// `from` intervenes only if lexically after `R_p`; one at `to` only if
    /// lexically before `R_c`.
    ///
    /// Under [`WalkStrategy::SetSkip`] the interval is processed in three
    /// tiers: the contention bound may prove survival without walking at
    /// all; otherwise the set-skipping walk visits only accesses that map
    /// to the reused line's set. [`WalkStrategy::LegacyScan`] walks every
    /// access and filters in the callback. Both orders visit the matching
    /// accesses identically, so the verdicts are bit-identical.
    #[allow(clippy::too_many_arguments)]
    fn evicted_between(
        &self,
        from: &[i64],
        to: &[i64],
        reused_line: i64,
        producer_rank: usize,
        consumer_rank: usize,
        lines: &mut Vec<i64>,
        walker: &mut SetWalker,
    ) -> bool {
        let program = self.program;
        let config = &self.config;
        let target_set = config.set_of_line(reused_line);
        let k = config.assoc() as usize;
        // Distinct contending lines; associativities are small, linear scan
        // beats hashing.
        lines.clear();
        let mut evicted = false;
        match self.walk {
            WalkStrategy::LegacyScan => {
                cme_ir::walk::walk_range_rev(program, from, to, |a, tag| {
                    let rank = program.reference(a.r).lex_rank;
                    if tag.at_start && rank <= producer_rank {
                        return ControlFlow::Continue(());
                    }
                    if tag.at_end && rank >= consumer_rank {
                        return ControlFlow::Continue(());
                    }
                    let line = config.mem_line(a.addr);
                    if line == reused_line {
                        // Re-touch: the line was resident here with the
                        // current contention count since; the verdict is
                        // already decided.
                        return ControlFlow::Break(());
                    }
                    if config.set_of_line(line) != target_set {
                        return ControlFlow::Continue(());
                    }
                    if !lines.contains(&line) {
                        lines.push(line);
                        if lines.len() >= k {
                            evicted = true;
                            return ControlFlow::Break(());
                        }
                    }
                    ControlFlow::Continue(())
                });
            }
            WalkStrategy::SetSkip => {
                if self.hit_by_contention_bound(from, to, reused_line, target_set) {
                    return false;
                }
                let filter = SetFilter::new(
                    config.line_bytes() as i64,
                    config.num_sets() as i64,
                    target_set,
                );
                walker.walk_range_rev_in_set(program, from, to, &filter, |a, tag| {
                    let rank = program.reference(a.r).lex_rank;
                    if tag.at_start && rank <= producer_rank {
                        return ControlFlow::Continue(());
                    }
                    if tag.at_end && rank >= consumer_rank {
                        return ControlFlow::Continue(());
                    }
                    // Every visited access already maps to `target_set`.
                    let line = config.mem_line(a.addr);
                    if line == reused_line {
                        return ControlFlow::Break(());
                    }
                    if !lines.contains(&line) {
                        lines.push(line);
                        if lines.len() >= k {
                            evicted = true;
                            return ControlFlow::Break(());
                        }
                    }
                    ControlFlow::Continue(())
                });
            }
        }
        evicted
    }

    /// The contention-bound early exit: a sufficient condition for a hit
    /// checked in O(references · depth) arithmetic before any walking.
    ///
    /// For every reference, the lexicographic interval `[from, to]` is
    /// over-approximated by a box (prefix positions where the endpoints
    /// agree pin a label or index, the first differing position gives a
    /// range, deeper dimensions fall back to the RIS bounding box). The
    /// reference's address plan turns the box into a memory-line window,
    /// and the lines of that window congruent to `target_set` bound the
    /// distinct lines the reference can contribute to the set. When the sum
    /// over all references (minus the reused line when some window covers
    /// it) stays below `k`, the LRU stack can never fill — the point is a
    /// hit without walking.
    fn hit_by_contention_bound(
        &self,
        from: &[i64],
        to: &[i64],
        reused_line: i64,
        target_set: i64,
    ) -> bool {
        let k = self.config.assoc() as i64;
        let nsets = self.config.num_sets() as i64;
        let n = self.program.depth();
        let diff = from
            .iter()
            .zip(to)
            .position(|(a, b)| a != b)
            .unwrap_or(2 * n);
        let mut sum: i64 = 0;
        let mut reused_counted = false;
        for bp in &self.bounds {
            let Some((l_min, l_max)) = self.ref_line_window(bp, from, to, diff) else {
                continue;
            };
            // Lines ≡ target_set (mod nsets) within [l_min, l_max].
            let cnt =
                (l_max - target_set).div_euclid(nsets) - (l_min - 1 - target_set).div_euclid(nsets);
            if cnt <= 0 {
                continue;
            }
            if (l_min..=l_max).contains(&reused_line) {
                reused_counted = true;
            }
            sum += cnt;
            if sum - (reused_counted as i64) >= k {
                return false;
            }
        }
        sum - (reused_counted as i64) < k
    }

    /// The memory-line window one reference can touch within the
    /// lexicographic interval `[from, to]`, or `None` when the reference
    /// cannot execute in the interval at all. `diff` is the first position
    /// where the endpoints differ (precomputed by the callers). Shared by
    /// [`Classifier::hit_by_contention_bound`] and the pre-pass's
    /// row-uniform bound so both screens stay in lock-step.
    fn ref_line_window(
        &self,
        bp: &RefBoundPlan<'_>,
        from: &[i64],
        to: &[i64],
        diff: usize,
    ) -> Option<(i64, i64)> {
        let n = self.program.depth();
        let mut w_min = bp.plan.constant_term();
        let mut w_max = w_min;
        for d in 0..n {
            // Interleaved positions: label at 2d, index at 2d + 1.
            let lpos = 2 * d;
            if lpos < diff {
                if bp.label[d] != from[lpos] {
                    return None;
                }
            } else if lpos == diff && (bp.label[d] < from[lpos] || bp.label[d] > to[lpos]) {
                return None;
            }
            let ipos = 2 * d + 1;
            let (mut lo, mut hi) = bp.bbox[d];
            if ipos < diff {
                lo = lo.max(from[ipos]);
                hi = hi.min(from[ipos]);
            } else if ipos == diff {
                lo = lo.max(from[ipos]);
                hi = hi.min(to[ipos]);
            }
            if lo > hi {
                return None;
            }
            let c = bp.plan.coeff(d);
            if c >= 0 {
                w_min += c * lo;
                w_max += c * hi;
            } else {
                w_min += c * hi;
                w_max += c * lo;
            }
        }
        Some((self.config.mem_line(w_min), self.config.mem_line(w_max)))
    }

    /// A row-uniform variant of the contention bound for the pre-pass: the
    /// interval `[from, to]` covers a whole row's interference windows, and
    /// the per-set line count drops the congruence residue (any class of an
    /// interval of lines `[l_min, l_max]` has at most
    /// `⌊(l_max − l_min)/nsets⌋ + 1` members) and the reused-line
    /// subtraction. The result is therefore an upper bound on the exact
    /// walk's distinct-contention count for *every* point of the row along
    /// the vector that produced `[from, to]`: `true` means each such point
    /// is a classifier hit.
    pub(crate) fn row_contention_hit(&self, from: &[i64], to: &[i64]) -> bool {
        let k = self.config.assoc() as i64;
        let nsets = self.config.num_sets() as i64;
        let n = self.program.depth();
        let diff = from
            .iter()
            .zip(to)
            .position(|(a, b)| a != b)
            .unwrap_or(2 * n);
        let mut sum: i64 = 0;
        for bp in &self.bounds {
            let Some((l_min, l_max)) = self.ref_line_window(bp, from, to, diff) else {
                continue;
            };
            sum += (l_max - l_min).div_euclid(nsets) + 1;
            if sum >= k {
                return false;
            }
        }
        sum < k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cme_ir::{LinExpr, ProgramBuilder, SNode, SRef};

    fn classify_all(program: &Program, config: CacheConfig) -> Vec<(RefId, Vec<i64>, PointClass)> {
        let reuse = ReuseAnalysis::analyze(program, config.line_bytes());
        let cl = Classifier::new(program, &reuse, config);
        let mut out = Vec::new();
        let mut scratch = Scratch::new();
        for r in 0..program.references().len() {
            program.ris(r).for_each_point(|p| {
                out.push((r, p.to_vec(), cl.classify_with_scratch(r, p, &mut scratch)));
            });
        }
        out
    }

    /// A sequential scan: one cold miss per line, spatial hits in between.
    #[test]
    fn stream_classification() {
        let mut b = ProgramBuilder::new("stream");
        b.array("A", &[32], 8);
        b.push(SNode::loop_(
            "I",
            1,
            32,
            vec![SNode::reads_only(vec![SRef::new(
                "A",
                vec![LinExpr::var("I")],
            )])],
        ));
        let p = b.build().unwrap();
        let cfg = CacheConfig::new(1024, 32, 1).unwrap();
        let verdicts = classify_all(&p, cfg);
        let cold = verdicts
            .iter()
            .filter(|(_, _, c)| matches!(c, PointClass::Cold))
            .count();
        let hits = verdicts
            .iter()
            .filter(|(_, _, c)| matches!(c, PointClass::Hit { .. }))
            .count();
        assert_eq!(cold, 8); // 32 elements × 8B / 32B lines
        assert_eq!(hits, 24);
    }

    /// Temporal reuse with an interfering conflicting line: direct-mapped
    /// evicts, 2-way keeps.
    #[test]
    fn conflict_sensitivity_to_associativity() {
        // Loop: read A(1); read B(1); A and B are 1024B apart so their first
        // lines conflict in a 1KB direct-mapped cache (32 sets).
        let mut b = ProgramBuilder::new("conflict");
        b.array("A", &[128], 8); // 1024 bytes
        b.array("B", &[128], 8);
        b.push(SNode::loop_(
            "I",
            1,
            4,
            vec![SNode::reads_only(vec![
                SRef::new("A", vec![LinExpr::constant(1)]),
                SRef::new("B", vec![LinExpr::constant(1)]),
            ])],
        ));
        let p = b.build().unwrap();
        assert_eq!(p.base_address(1) - p.base_address(0), 1024);

        let direct = CacheConfig::new(1024, 32, 1).unwrap();
        let verdicts = classify_all(&p, direct);
        // Every re-read of A(1) finds its line evicted by B(1) (and vice
        // versa): 2 cold + 6 replacement misses.
        let miss = verdicts.iter().filter(|(_, _, c)| c.is_miss()).count();
        assert_eq!(miss, 8);

        let twoway = CacheConfig::new(1024, 32, 2).unwrap();
        let verdicts = classify_all(&p, twoway);
        let miss = verdicts.iter().filter(|(_, _, c)| c.is_miss()).count();
        assert_eq!(miss, 2); // only the two cold misses
    }

    /// Classification agrees exactly with the LRU simulator on a program
    /// with mixed reuse (the ground-truth cross-check).
    #[test]
    fn agrees_with_simulator_on_small_kernel() {
        let n = 12i64;
        let mut b = ProgramBuilder::new("mix");
        b.array("A", &[n], 8);
        b.array("B", &[n, n], 8);
        let i1 = LinExpr::var("I1");
        let i2 = LinExpr::var("I2");
        b.push(SNode::loop_(
            "I1",
            2,
            n,
            vec![SNode::loop_(
                "I2",
                1,
                n,
                vec![SNode::assign(
                    SRef::new("B", vec![i2.clone(), i1.clone()]),
                    vec![
                        SRef::new("A", vec![i2.clone()]),
                        SRef::new("B", vec![i2.clone(), i1.offset(-1)]),
                    ],
                )],
            )],
        ));
        let p = b.build().unwrap();
        for assoc in [1u32, 2, 4] {
            let cfg = CacheConfig::new(512, 32, assoc).unwrap();
            let predicted: u64 = classify_all(&p, cfg)
                .iter()
                .filter(|(_, _, c)| c.is_miss())
                .count() as u64;
            let sim = cme_cache::Simulator::new(cfg).run(&p);
            assert_eq!(
                predicted,
                sim.total_misses(),
                "assoc {assoc}: prediction != simulation"
            );
        }
    }

    /// `classify` and `classify_with_scratch` agree point-for-point, and a
    /// single scratch serves programs of different depths in sequence.
    #[test]
    fn scratch_path_matches_allocating_path() {
        let mut b = ProgramBuilder::new("mix3");
        b.array("A", &[16, 16], 8);
        let (i, j) = (LinExpr::var("I"), LinExpr::var("J"));
        b.push(SNode::loop_(
            "J",
            2,
            10,
            vec![SNode::loop_(
                "I",
                1,
                10,
                vec![SNode::assign(
                    SRef::new("A", vec![i.clone(), j.clone()]),
                    vec![SRef::new("A", vec![i.clone(), j.offset(-1)])],
                )],
            )],
        ));
        let deep = b.build().unwrap();

        let mut b = ProgramBuilder::new("flat");
        b.array("A", &[64], 8);
        b.push(SNode::loop_(
            "I",
            1,
            64,
            vec![SNode::reads_only(vec![SRef::new(
                "A",
                vec![LinExpr::var("I")],
            )])],
        ));
        let flat = b.build().unwrap();

        let cfg = CacheConfig::new(512, 32, 2).unwrap();
        let mut scratch = Scratch::new();
        // Deliberately alternate programs so buffer sizes change between
        // calls: 2-deep (n=2) then 1-deep (n=1).
        for program in [&deep, &flat, &deep] {
            let reuse = ReuseAnalysis::analyze(program, cfg.line_bytes());
            let cl = Classifier::new(program, &reuse, cfg);
            for r in 0..program.references().len() {
                program.ris(r).for_each_point(|p| {
                    assert_eq!(
                        cl.classify(r, p),
                        cl.classify_with_scratch(r, p, &mut scratch),
                        "r={r} p={p:?}"
                    );
                });
            }
        }
    }
}
