//! A probabilistic miss estimator in the style of Fraguela, Doallo &
//! Zapata (PACT'99) — the comparison method of Table 7.
//!
//! The defining traits of that class of models, reproduced here:
//!
//! * reuse is summarised once per `(reference, reuse vector)` pair at a
//!   *representative* iteration point instead of being solved pointwise;
//! * interference is treated *probabilistically*: the distinct memory
//!   lines touched in the reuse interval are assumed to scatter uniformly
//!   and independently over the cache sets, so the reused line survives a
//!   `k`-way set with probability `P(Binom(V, 1/S) < k)` (evaluated via its
//!   Poisson limit);
//! * coverage of a reuse vector across the iteration space is approximated
//!   geometrically from bounding boxes rather than counted exactly.
//!
//! These independence assumptions are exactly what the cache-miss-equation
//! approach removes, which is why `EstimateMisses` dominates this model in
//! Table 7 — most visibly on configurations where alignment and conflict
//! structure matter (large lines, small caches).

use cme_cache::CacheConfig;
use cme_ir::{Program, RefId};
use cme_poly::{lex, vector as vecs};
use cme_reuse::{ReuseAnalysis, ReuseKind};
use std::ops::ControlFlow;

/// Result of the probabilistic estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbEstimate {
    /// Per-reference predicted miss ratios.
    pub per_ref: Vec<f64>,
    /// RIS volumes (weights).
    pub weights: Vec<u64>,
}

impl ProbEstimate {
    /// The volume-weighted program miss ratio.
    pub fn miss_ratio(&self) -> f64 {
        let total: u64 = self.weights.iter().sum();
        if total == 0 {
            return 0.0;
        }
        self.per_ref
            .iter()
            .zip(&self.weights)
            .map(|(&m, &w)| m * w as f64)
            .sum::<f64>()
            / total as f64
    }
}

/// Upper bound on the representative interval walk; intervals longer than
/// this have (essentially) unbounded interference and survive with
/// probability ~0 anyway.
const WALK_CAP: u64 = 200_000;

/// Runs the probabilistic model.
pub fn estimate(program: &Program, config: CacheConfig) -> ProbEstimate {
    let reuse = ReuseAnalysis::analyze(program, config.line_bytes());
    let nrefs = program.references().len();
    let sets = config.num_sets() as f64;
    let k = config.assoc() as usize;

    let mut per_ref = Vec::with_capacity(nrefs);
    let mut weights = Vec::with_capacity(nrefs);
    for r in 0..nrefs {
        let ris = program.ris(r);
        let volume = ris.count();
        weights.push(volume);
        if volume == 0 {
            per_ref.push(0.0);
            continue;
        }
        // Representative point: the centre of the bounding box, snapped
        // into the RIS by a tiny deterministic search.
        let rep = representative_point(program, r);
        let arr = program.array(program.reference(r).array);
        let ls_elems = (config.line_bytes() / arr.elem_bytes as u64).max(1) as f64;

        let mut remaining = 1.0f64;
        let mut hit_prob = 0.0f64;
        // Spatial vectors of one family (same producer) are not
        // independent: the fraction not covered by the closest one is the
        // line-boundary fraction, which the farther family members also
        // miss. Only the closest spatial vector per producer participates.
        let mut spatial_seen: std::collections::HashSet<RefId> = std::collections::HashSet::new();
        for rv in reuse.for_consumer(r) {
            if remaining < 1e-9 {
                break;
            }
            if rv.kind != ReuseKind::Temporal && !spatial_seen.insert(rv.producer) {
                continue;
            }
            // Geometric coverage of the vector: per-dimension overlap of
            // the consumer box with the producer box shifted by r.
            let f = coverage_fraction(program, rv.producer, r, &rv.vector);
            // Spatial vectors only hit when the two elements share a line:
            // alignment factor (L − d)/L for first-dimension distance d.
            let align = match rv.kind {
                ReuseKind::Temporal => 1.0,
                ReuseKind::Spatial | ReuseKind::CrossColumnSpatial => {
                    let d = first_dim_distance(program, rv.producer, r, &rv.vector);
                    ((ls_elems - d.abs() as f64) / ls_elems).max(0.0)
                }
            };
            let covered = remaining * f * align;
            if covered < 1e-9 {
                continue;
            }
            // Representative interference volume: distinct lines touched in
            // the interval ending at the representative point.
            let v = match &rep {
                Some(point) => interval_footprint(program, r, point, &rv.vector),
                None => WALK_CAP,
            };
            let lambda = v as f64 / sets;
            let survive = poisson_cdf_below(k, lambda);
            hit_prob += covered * survive;
            remaining -= covered;
        }
        // Whatever is not covered by any reuse vector is a (cold) miss.
        per_ref.push((1.0 - hit_prob).clamp(0.0, 1.0));
    }
    ProbEstimate { per_ref, weights }
}

/// `P(X < k)` for `X ~ Poisson(λ)`.
fn poisson_cdf_below(k: usize, lambda: f64) -> f64 {
    if lambda > 700.0 {
        return 0.0;
    }
    let mut term = (-lambda).exp();
    let mut acc = 0.0;
    for j in 0..k {
        if j > 0 {
            term *= lambda / j as f64;
        }
        acc += term;
    }
    acc.min(1.0)
}

/// Snaps the bounding-box centre into the RIS.
fn representative_point(program: &Program, r: RefId) -> Option<Vec<i64>> {
    let ris = program.ris(r);
    let bbox = ris.bounding_box();
    let centre: Vec<i64> = bbox.iter().map(|&(lo, hi)| (lo + hi) / 2).collect();
    if ris.contains(&centre) {
        return Some(centre);
    }
    // Walk the final dimensions through their conditional intervals.
    let mut point = Vec::with_capacity(centre.len());
    for (d, &c) in centre.iter().enumerate() {
        let (lo, hi) = ris.system().interval(&point, d)?;
        point.push(c.clamp(lo, hi));
    }
    if ris.contains(&point) {
        Some(point)
    } else {
        None
    }
}

/// Fraction of consumer iterations whose producer instance exists,
/// estimated from shifted bounding boxes (the probabilistic-model
/// approximation; the CMEs check this exactly per point).
fn coverage_fraction(program: &Program, producer: RefId, consumer: RefId, rv: &[i64]) -> f64 {
    let (_, x) = lex::deinterleave(rv);
    let pc = program.ris(consumer).bounding_box();
    let pp = program.ris(producer).bounding_box();
    let mut frac = 1.0f64;
    for d in 0..pc.len() {
        let (clo, chi) = pc[d];
        // Producer box shifted by +x covers consumer values in
        // [plo + x, phi + x].
        let (plo, phi) = (pp[d].0 + x[d], pp[d].1 + x[d]);
        let lo = clo.max(plo);
        let hi = chi.min(phi);
        let width = (chi - clo + 1) as f64;
        let overlap = ((hi - lo + 1).max(0)) as f64;
        frac *= overlap / width;
    }
    frac
}

/// First-dimension element distance between producer and consumer along a
/// vector (`δ₁ − M₁·x` in the paper's notation).
fn first_dim_distance(program: &Program, producer: RefId, consumer: RefId, rv: &[i64]) -> i64 {
    let (_, x) = lex::deinterleave(rv);
    let rp = program.reference(producer);
    let rc = program.reference(consumer);
    if rp.subs.is_empty() || rc.subs.is_empty() {
        return 0;
    }
    let delta1 = rp.subs[0].constant_term() - rc.subs[0].constant_term();
    delta1 - vecs::dot(rp.subs[0].coeffs(), &x)
}

/// Distinct memory lines touched in the interval `[rep − r, rep]`, capped.
fn interval_footprint(program: &Program, r: RefId, rep: &[i64], rv: &[i64]) -> u64 {
    let i_vec = program.iteration_vector(r, rep);
    let from = vecs::sub(&i_vec, rv);
    let line_bytes = 32; // footprint granularity; the set-spread uses the
                         // real geometry, only V is counted here.
    let mut lines: std::collections::HashSet<i64> = std::collections::HashSet::new();
    let mut walked = 0u64;
    cme_ir::walk::walk_range(program, &from, &i_vec, |a, _| {
        walked += 1;
        lines.insert(a.addr.div_euclid(line_bytes));
        if walked >= WALK_CAP {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    lines.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cme_ir::{LinExpr, ProgramBuilder, SNode, SRef};

    fn stream(len: i64) -> Program {
        let mut b = ProgramBuilder::new("stream");
        b.array("A", &[len], 8);
        b.push(SNode::loop_(
            "I",
            1,
            len,
            vec![SNode::reads_only(vec![SRef::new(
                "A",
                vec![LinExpr::var("I")],
            )])],
        ));
        b.build().unwrap()
    }

    #[test]
    fn poisson_tail_sane() {
        assert!((poisson_cdf_below(1, 0.0) - 1.0).abs() < 1e-12);
        assert!(poisson_cdf_below(1, 10.0) < 1e-3);
        assert!(poisson_cdf_below(4, 0.5) > 0.99);
        assert_eq!(poisson_cdf_below(2, 1e6), 0.0);
    }

    #[test]
    fn stream_estimate_close_to_quarter() {
        // Sequential scan of 8B elements with 32B lines: true ratio 0.25.
        let p = stream(4096);
        let cfg = CacheConfig::new(32 * 1024, 32, 1).unwrap();
        let est = estimate(&p, cfg);
        assert!(
            (est.miss_ratio() - 0.25).abs() < 0.05,
            "got {}",
            est.miss_ratio()
        );
    }

    #[test]
    fn estimate_is_a_probability() {
        let p = cme_workloads_smoke();
        for assoc in [1u32, 2, 4] {
            let cfg = CacheConfig::new(2048, 32, assoc).unwrap();
            let est = estimate(&p, cfg);
            for (i, &m) in est.per_ref.iter().enumerate() {
                assert!((0.0..=1.0).contains(&m), "ref {i}: {m}");
            }
        }
    }

    /// A small stencil standing in for a workload (avoids a circular dev
    /// dependency on cme-workloads).
    fn cme_workloads_smoke() -> Program {
        let mut b = ProgramBuilder::new("stencil");
        b.array("U", &[32, 32], 8);
        b.array("V", &[32, 32], 8);
        let (i, j) = (LinExpr::var("I"), LinExpr::var("J"));
        b.push(SNode::loop_(
            "J",
            2,
            31,
            vec![SNode::loop_(
                "I",
                2,
                31,
                vec![SNode::assign(
                    SRef::new("V", vec![i.clone(), j.clone()]),
                    vec![
                        SRef::new("U", vec![i.offset(-1), j.clone()]),
                        SRef::new("U", vec![i.offset(1), j.clone()]),
                    ],
                )],
            )],
        ));
        b.build().unwrap()
    }

    #[test]
    fn less_accurate_than_sampled_cme_on_conflicted_stencil() {
        // The Table 7 relationship at small scale: |Δ_P| ≥ |Δ_E| against
        // the simulator (allowing ties).
        let p = cme_workloads_smoke();
        let cfg = CacheConfig::new(1024, 32, 1).unwrap();
        let sim = cme_cache::Simulator::new(cfg).run(&p).miss_ratio();
        let prob = estimate(&p, cfg).miss_ratio();
        let cme = cme_analysis::EstimateMisses::new(
            &p,
            cfg,
            cme_analysis::SamplingOptions::paper_default(),
        )
        .run()
        .miss_ratio();
        let d_p = (prob - sim).abs();
        let d_e = (cme - sim).abs();
        assert!(
            d_e <= d_p + 1e-9,
            "CME error {d_e:.4} should not exceed probabilistic error {d_p:.4} (sim {sim:.4})"
        );
    }
}
