//! Baseline estimators the CME method is compared against.
//!
//! * [`probabilistic`] — an independence-assumption probabilistic model in
//!   the style of Fraguela et al. (the Δ_P column of Table 7);
//! * [`CacheModel`] — a small trait unifying every way of obtaining a miss
//!   ratio in this workspace (simulation, exact CMEs, sampled CMEs,
//!   probabilistic), so benches and examples can sweep them uniformly.

pub mod probabilistic;

pub use probabilistic::{estimate as probabilistic_estimate, ProbEstimate};

use cme_cache::{CacheConfig, Simulator};
use cme_ir::Program;

/// Anything that can predict (or measure) a program's miss ratio.
pub trait CacheModel {
    /// Human-readable model name for tables.
    fn name(&self) -> &'static str;

    /// The whole-program miss ratio in `[0, 1]`.
    fn miss_ratio(&self, program: &Program, config: CacheConfig) -> f64;
}

/// Ground truth: trace-driven LRU simulation.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimulationModel;

impl CacheModel for SimulationModel {
    fn name(&self) -> &'static str {
        "simulator"
    }

    fn miss_ratio(&self, program: &Program, config: CacheConfig) -> f64 {
        Simulator::new(config).run(program).miss_ratio()
    }
}

/// Exact cache-miss-equation analysis (`FindMisses`).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactCmeModel;

impl CacheModel for ExactCmeModel {
    fn name(&self) -> &'static str {
        "FindMisses"
    }

    fn miss_ratio(&self, program: &Program, config: CacheConfig) -> f64 {
        cme_analysis::FindMisses::new(program, config)
            .run()
            .miss_ratio()
    }
}

/// Sampled cache-miss-equation analysis (`EstimateMisses`).
#[derive(Debug, Clone, Default)]
pub struct SampledCmeModel {
    /// Sampling parameters (defaults to the paper's `c = 95 %, w = 0.05`).
    pub options: cme_analysis::SamplingOptions,
}

impl CacheModel for SampledCmeModel {
    fn name(&self) -> &'static str {
        "EstimateMisses"
    }

    fn miss_ratio(&self, program: &Program, config: CacheConfig) -> f64 {
        cme_analysis::EstimateMisses::new(program, config, self.options.clone())
            .run()
            .miss_ratio()
    }
}

/// The probabilistic baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProbabilisticModel;

impl CacheModel for ProbabilisticModel {
    fn name(&self) -> &'static str {
        "probabilistic"
    }

    fn miss_ratio(&self, program: &Program, config: CacheConfig) -> f64 {
        probabilistic::estimate(program, config).miss_ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cme_ir::{LinExpr, ProgramBuilder, SNode, SRef};

    #[test]
    fn models_agree_on_trivial_stream() {
        let mut b = ProgramBuilder::new("s");
        b.array("A", &[256], 8);
        b.push(SNode::loop_(
            "I",
            1,
            256,
            vec![SNode::reads_only(vec![SRef::new(
                "A",
                vec![LinExpr::var("I")],
            )])],
        ));
        let p = b.build().unwrap();
        let cfg = CacheConfig::new(32 * 1024, 32, 2).unwrap();
        let truth = SimulationModel.miss_ratio(&p, cfg);
        assert!((ExactCmeModel.miss_ratio(&p, cfg) - truth).abs() < 1e-12);
        assert!((SampledCmeModel::default().miss_ratio(&p, cfg) - truth).abs() < 0.05);
        assert!((ProbabilisticModel.miss_ratio(&p, cfg) - truth).abs() < 0.08);
    }
}
