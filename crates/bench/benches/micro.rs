//! Criterion micro-benchmarks for the analysis pipeline stages, plus the
//! sampling-parameter ablation called out in DESIGN.md.

use cme_analysis::{EstimateMisses, FindMisses, SamplingOptions};
use cme_cache::{CacheConfig, Simulator};
use cme_poly::{Affine, Constraint, ConstraintSystem, Space};
use cme_reuse::ReuseAnalysis;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn cfg() -> CacheConfig {
    CacheConfig::new(8 * 1024, 32, 2).expect("valid")
}

fn bench_reuse_generation(c: &mut Criterion) {
    let hydro = cme_workloads::hydro(50, 50);
    let mmt = cme_workloads::mmt(32, 16, 8);
    let mut g = c.benchmark_group("reuse_generation");
    g.bench_function("hydro_50", |b| {
        b.iter(|| ReuseAnalysis::analyze(black_box(&hydro), 32))
    });
    g.bench_function("mmt_32", |b| {
        b.iter(|| ReuseAnalysis::analyze(black_box(&mmt), 32))
    });
    g.finish();
}

fn bench_polyhedra(c: &mut Criterion) {
    // Triangular 3-D iteration space: count + sample.
    let mut sys = ConstraintSystem::new(3);
    sys.push(Constraint::ge(Affine::new(vec![1, 0, 0], -1)));
    sys.push(Constraint::ge(Affine::new(vec![-1, 0, 0], 60)));
    sys.push(Constraint::ge(Affine::new(vec![-1, 1, 0], 0)));
    sys.push(Constraint::ge(Affine::new(vec![0, -1, 0], 60)));
    sys.push(Constraint::ge(Affine::new(vec![0, -1, 1], 0)));
    sys.push(Constraint::ge(Affine::new(vec![0, 0, -1], 60)));
    let space = Space::new(sys).expect("bounded");
    let mut g = c.benchmark_group("polyhedra");
    g.bench_function("count_triangular_60", |b| {
        b.iter(|| black_box(&space).count())
    });
    g.bench_function("sample_385_points", |b| {
        use rand::SeedableRng;
        b.iter_batched(
            || rand::rngs::StdRng::seed_from_u64(7),
            |mut rng| {
                cme_poly::sample::sample_points(
                    black_box(&space),
                    &mut rng,
                    385,
                    cme_poly::sample::DEFAULT_MAX_TRIALS,
                )
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let hydro = cme_workloads::hydro(40, 40);
    let mut g = c.benchmark_group("simulator");
    g.throughput(criterion::Throughput::Elements(hydro.total_accesses()));
    g.bench_function("hydro_40_trace", |b| {
        b.iter(|| Simulator::new(cfg()).run(black_box(&hydro)))
    });
    g.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let hydro = cme_workloads::hydro(24, 24);
    let mut g = c.benchmark_group("analysis");
    g.sample_size(10);
    g.bench_function("find_misses_hydro_24", |b| {
        b.iter(|| FindMisses::new(black_box(&hydro), cfg()).run())
    });
    let hydro50 = cme_workloads::hydro(50, 50);
    g.bench_function("estimate_misses_hydro_50", |b| {
        b.iter(|| {
            EstimateMisses::new(black_box(&hydro50), cfg(), SamplingOptions::paper_default()).run()
        })
    });
    g.finish();
}

/// Ablation: how the sampling interval width trades time for accuracy.
fn bench_sampling_ablation(c: &mut Criterion) {
    let program = cme_workloads::hydro(50, 50);
    let mut g = c.benchmark_group("sampling_width_ablation");
    g.sample_size(10);
    for (label, width) in [("w_0.02", 0.02), ("w_0.05", 0.05), ("w_0.10", 0.10)] {
        let opts = SamplingOptions {
            confidence: 0.95,
            width,
            seed: 7,
            fallback: None,
        };
        g.bench_function(label, |b| {
            b.iter(|| EstimateMisses::new(black_box(&program), cfg(), opts.clone()).run())
        });
    }
    g.finish();
}

/// Ablation: the per-consumer reuse-vector cap trades generation/classify
/// time against (bounded) conservative overestimation on reference-dense
/// programs.
fn bench_vector_cap_ablation(c: &mut Criterion) {
    let program = cme_workloads::mmt(32, 16, 8);
    let mut g = c.benchmark_group("vector_cap_ablation");
    g.sample_size(10);
    for (label, cap) in [("cap_32", 32usize), ("cap_128", 128), ("uncapped", usize::MAX)] {
        g.bench_function(label, |b| {
            b.iter(|| ReuseAnalysis::analyze_capped(black_box(&program), 32, cap))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_reuse_generation,
    bench_polyhedra,
    bench_simulator,
    bench_analysis,
    bench_sampling_ablation,
    bench_vector_cap_ablation
);
criterion_main!(benches);
