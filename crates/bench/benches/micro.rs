//! Std-only micro-benchmarks for the analysis pipeline stages, plus the
//! sampling-parameter ablation called out in DESIGN.md.
//!
//! Runs via `cargo bench -p cme-bench` (the manifest sets `harness = false`
//! so this is a plain binary — no external benchmarking framework needed,
//! which keeps the workspace building offline). Each case is timed with a
//! warm-up pass and a median-of-N wall-clock measurement.

use cme_analysis::{EstimateMisses, FindMisses, SamplingOptions};
use cme_cache::{CacheConfig, Simulator};
use cme_poly::{Affine, Constraint, ConstraintSystem, SeededRng, Space};
use cme_reuse::ReuseAnalysis;
use std::hint::black_box;
use std::time::Instant;

fn cfg() -> CacheConfig {
    CacheConfig::new(8 * 1024, 32, 2).expect("valid")
}

/// Median-of-`n` wall-clock timing with one warm-up iteration.
fn bench<T>(label: &str, n: usize, mut f: impl FnMut() -> T) {
    black_box(f());
    let mut times: Vec<f64> = (0..n)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = times[times.len() / 2];
    println!("{label:<40} {median:>10.3} ms  (median of {n})");
}

fn bench_reuse_generation() {
    let hydro = cme_workloads::hydro(50, 50);
    let mmt = cme_workloads::mmt(32, 16, 8);
    bench("reuse_generation/hydro_50", 10, || {
        ReuseAnalysis::analyze(black_box(&hydro), 32)
    });
    bench("reuse_generation/mmt_32", 10, || {
        ReuseAnalysis::analyze(black_box(&mmt), 32)
    });
}

fn bench_polyhedra() {
    // Triangular 3-D iteration space: count + sample.
    let mut sys = ConstraintSystem::new(3);
    sys.push(Constraint::ge(Affine::new(vec![1, 0, 0], -1)));
    sys.push(Constraint::ge(Affine::new(vec![-1, 0, 0], 60)));
    sys.push(Constraint::ge(Affine::new(vec![-1, 1, 0], 0)));
    sys.push(Constraint::ge(Affine::new(vec![0, -1, 0], 60)));
    sys.push(Constraint::ge(Affine::new(vec![0, -1, 1], 0)));
    sys.push(Constraint::ge(Affine::new(vec![0, 0, -1], 60)));
    let space = Space::new(sys).expect("bounded");
    bench("polyhedra/count_triangular_60", 20, || {
        black_box(&space).count()
    });
    bench("polyhedra/sample_385_points", 20, || {
        let mut rng = SeededRng::seed_from_u64(7);
        cme_poly::sample::sample_points(
            black_box(&space),
            &mut rng,
            385,
            cme_poly::sample::DEFAULT_MAX_TRIALS,
        )
    });
}

fn bench_simulator() {
    let hydro = cme_workloads::hydro(40, 40);
    bench("simulator/hydro_40_trace", 10, || {
        Simulator::new(cfg()).run(black_box(&hydro))
    });
}

fn bench_analysis() {
    let hydro = cme_workloads::hydro(24, 24);
    bench("analysis/find_misses_hydro_24", 5, || {
        FindMisses::new(black_box(&hydro), cfg()).run()
    });
    let hydro50 = cme_workloads::hydro(50, 50);
    bench("analysis/estimate_misses_hydro_50", 5, || {
        EstimateMisses::new(black_box(&hydro50), cfg(), SamplingOptions::paper_default()).run()
    });
}

/// Ablation: how the sampling interval width trades time for accuracy.
fn bench_sampling_ablation() {
    let program = cme_workloads::hydro(50, 50);
    for (label, width) in [("w_0.02", 0.02), ("w_0.05", 0.05), ("w_0.10", 0.10)] {
        let opts = SamplingOptions {
            width,
            seed: 7,
            ..SamplingOptions::paper_default()
        };
        bench(&format!("sampling_width_ablation/{label}"), 5, || {
            EstimateMisses::new(black_box(&program), cfg(), opts.clone()).run()
        });
    }
}

/// Ablation: the per-consumer reuse-vector cap trades generation/classify
/// time against (bounded) conservative overestimation on reference-dense
/// programs.
fn bench_vector_cap_ablation() {
    let program = cme_workloads::mmt(32, 16, 8);
    for (label, cap) in [
        ("cap_32", 32usize),
        ("cap_128", 128),
        ("uncapped", usize::MAX),
    ] {
        bench(&format!("vector_cap_ablation/{label}"), 5, || {
            ReuseAnalysis::analyze_capped(black_box(&program), 32, cap)
        });
    }
}

fn main() {
    bench_reuse_generation();
    bench_polyhedra();
    bench_simulator();
    bench_analysis();
    bench_sampling_ablation();
    bench_vector_cap_ablation();
}
