//! Drives the `analyze` binary itself: malformed FORTRAN must produce a
//! `path:line:` diagnostic and a nonzero exit, never a panic; well-formed
//! input must still succeed.

use std::path::PathBuf;
use std::process::Command;

fn temp_file(tag: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("cme-analyze-{tag}-{}.f", std::process::id()));
    std::fs::write(&path, contents).expect("write temp source");
    path
}

fn analyze(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_analyze"))
        .args(args)
        .output()
        .expect("spawn analyze")
}

#[test]
fn malformed_fortran_exits_nonzero_with_file_line_diagnostic() {
    // Line 3 opens a DO loop that is never closed.
    let src = "      SUBROUTINE S\n      REAL*8 A(8)\n      DO 10 I = 1, 8\n      A(I) = 0.0\n      END\n";
    let path = temp_file("unclosed-do", src);
    let out = analyze(&["--file", path.to_str().unwrap()]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    let _ = std::fs::remove_file(&path);

    assert_eq!(out.status.code(), Some(2), "stderr: {stderr}");
    assert!(
        stderr.contains(&format!("{}:", path.display())),
        "diagnostic must name the file: {stderr}"
    );
    // `path:line:` — the diagnostic points into the source.
    let after_path =
        &stderr[stderr.find(path.to_str().unwrap()).unwrap() + path.as_os_str().len()..];
    assert!(
        after_path.starts_with(':')
            && after_path[1..]
                .split(':')
                .next()
                .is_some_and(|l| l.trim().parse::<usize>().is_ok()),
        "diagnostic must carry a line number: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "must not panic: {stderr}");
}

#[test]
fn unbound_symbol_diagnostic_names_the_symbol() {
    let src = "      SUBROUTINE S\n      REAL*8 A(N)\n      DO 10 I = 1, N\n      A(I) = 0.0\n10    CONTINUE\n      END\n";
    let path = temp_file("unbound", src);
    // No --param N=..., so N is unbound.
    let out = analyze(&["--file", path.to_str().unwrap()]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    let _ = std::fs::remove_file(&path);

    assert_eq!(out.status.code(), Some(2), "stderr: {stderr}");
    assert!(stderr.contains("`N`"), "should name the symbol: {stderr}");
}

#[test]
fn unknown_workload_exits_nonzero() {
    let out = analyze(&["--workload", "doom"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("doom"), "{stderr}");
}

#[test]
fn well_formed_file_still_succeeds() {
    let src = "      SUBROUTINE S\n      REAL*8 A(N)\n      DO 10 I = 1, N\n      A(I) = 0.0\n10    CONTINUE\n      END\n";
    let path = temp_file("good", src);
    let out = analyze(&[
        "--file",
        path.to_str().unwrap(),
        "--param",
        "N=16",
        "--exact",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let _ = std::fs::remove_file(&path);

    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("miss ratio"), "{stdout}");
}

#[test]
fn degenerate_geometries_exit_two_with_one_line_diagnostic() {
    // Zero fields, a size that does not divide into ways, and a
    // 64-bit-overflowing way size: each must be a one-line exit-2
    // diagnostic, never a panic or a wrapped-arithmetic analysis.
    for (geometry, needle) in [
        ("0:1:32", "cache size"),
        ("8K:0:32", "associativity"),
        ("8K:1:0", "line size"),
        ("8K:3:32", "divide"),
        ("9223372036854775807:4:9223372036854775807", "overflows"),
    ] {
        let out = analyze(&["--workload", "mmt", "--n", "8", "--geometry", geometry]);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(out.status.code(), Some(2), "{geometry}: {stderr}");
        assert!(
            stderr.to_lowercase().contains(needle),
            "{geometry}: diagnostic should mention {needle}: {stderr}"
        );
        assert_eq!(
            stderr.trim().lines().count(),
            1,
            "{geometry}: diagnostic must be one line: {stderr}"
        );
        assert!(!stderr.contains("panicked"), "{geometry}: {stderr}");
    }
}
