//! Shared plumbing for the table-regeneration binaries.
//!
//! Every binary accepts `--scale small|medium|paper` (default `small`):
//!
//! * `small` — reduced problem sizes so a full table regenerates in
//!   seconds; the qualitative shape (who wins, error magnitudes, speedups)
//!   is preserved;
//! * `medium` — intermediate sizes;
//! * `paper` — the paper's exact problem sizes (Hydro 100×100, MGRID 100,
//!   MMT 100/100/50 and the N=200/400 sweep). Simulation columns can take
//!   a long time at this scale, exactly as the paper reports.

use cme_analysis::Threads;
use cme_cache::CacheConfig;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Problem-size scale for the table binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Fast CI-friendly sizes.
    Small,
    /// Intermediate sizes.
    Medium,
    /// The paper's sizes.
    Paper,
}

impl Scale {
    /// Parses `--scale <s>` from the process arguments (default `small`).
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        for i in 0..args.len() {
            if args[i] == "--scale" {
                match args.get(i + 1).map(String::as_str) {
                    Some("paper") => return Scale::Paper,
                    Some("medium") => return Scale::Medium,
                    Some("small") => return Scale::Small,
                    other => panic!("unknown --scale {other:?} (small|medium|paper)"),
                }
            }
        }
        Scale::Small
    }

    /// A human-readable suffix for table captions.
    pub fn label(&self) -> &'static str {
        match self {
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Paper => "paper",
        }
    }
}

/// Parses `--threads <n>` from the process arguments: `0` or absent means
/// one worker per hardware thread, `1` forces the serial path. Reports are
/// byte-identical for every value — the knob only changes wall-clock time.
pub fn threads_from_args() -> Threads {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == "--threads" {
            let n: usize = args
                .get(i + 1)
                .and_then(|v| v.parse().ok())
                .expect("--threads <count> (0 = auto)");
            return Threads::from_flag(n);
        }
    }
    Threads::Auto
}

/// The paper's three cache configurations: 32KB, 32B lines,
/// direct/2-way/4-way.
pub fn paper_caches() -> Vec<(&'static str, CacheConfig)> {
    vec![
        ("direct", CacheConfig::new(32 * 1024, 32, 1).expect("valid")),
        ("2-way", CacheConfig::new(32 * 1024, 32, 2).expect("valid")),
        ("4-way", CacheConfig::new(32 * 1024, 32, 4).expect("valid")),
    ]
}

/// Scaled-down caches keeping the sets×ways shape for small problem sizes
/// (a 32KB cache trivialises tiny working sets).
pub fn scaled_caches(kb: u64) -> Vec<(&'static str, CacheConfig)> {
    vec![
        ("direct", CacheConfig::new(kb * 1024, 32, 1).expect("valid")),
        ("2-way", CacheConfig::new(kb * 1024, 32, 2).expect("valid")),
        ("4-way", CacheConfig::new(kb * 1024, 32, 4).expect("valid")),
    ]
}

/// Loads a FORTRAN file and lowers it to a normalised [`cme_ir::Program`]
/// (parse → inline → normalise), turning every failure into a
/// `path:line: message` diagnostic suitable for a CLI to print and exit
/// nonzero with — malformed input is a user error, not a panic.
pub fn load_fortran(path: &str, params: &HashMap<String, i64>) -> Result<cme_ir::Program, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let source = cme_fortran::parse_program(&text, params)
        .map_err(|e| format!("{path}:{}: {}", e.line, e.kind))?;
    let inlined = cme_inline::Inliner::new()
        .inline(&source)
        .map_err(|e| format!("{path}: inline: {e}"))?;
    cme_ir::normalize(&inlined, &Default::default()).map_err(|e| format!("{path}: normalise: {e}"))
}

/// The host's available hardware parallelism — recorded in every
/// `BENCH_*.json` so numbers from different machines stay comparable.
pub fn hw_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Times a closure, returning its value and the wall-clock duration.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// Formats a duration in seconds with sensible precision.
pub fn secs(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s < 0.01 {
        format!("{:.4}", s)
    } else if s < 10.0 {
        format!("{:.2}", s)
    } else {
        format!("{:.1}", s)
    }
}

/// Minimal fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                out.push_str(&format!("{:>width$}  ", c, width = widths[i]));
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(vec!["123".into(), "4".into()]);
        let s = t.render();
        assert!(s.contains("123"));
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn caches_are_valid() {
        assert_eq!(paper_caches().len(), 3);
        assert_eq!(scaled_caches(4)[2].1.assoc(), 4);
    }

    #[test]
    fn secs_formats() {
        assert_eq!(secs(Duration::from_millis(1)), "0.0010");
        assert_eq!(secs(Duration::from_secs(5)), "5.00");
        assert_eq!(secs(Duration::from_secs(100)), "100.0");
    }
}
