//! Timing harness for the definitely-hit/definitely-miss pre-pass: runs
//! cold `FindMisses` (set-skip walk, serial) with the pre-pass off and on,
//! verifies the reports agree point-for-point, records the resolution rate
//! (share of points the pre-pass settled without an interference walk) and
//! writes the numbers to `BENCH_prepass.json`.
//!
//! ```text
//! cargo run -p cme-bench --bin bench_prepass --release -- \
//!     [--scale small|medium|paper] [--out BENCH_prepass.json]
//! ```
//!
//! `--scale paper` uses the paper's problem sizes (MMT N=BJ=100, BK=50,
//! Hydro 100×100, MGRID 100); the default `small` is a CI smoke size.
//!
//! Floors (hard process-exit failures, used by `scripts/ci.sh`):
//! * MMT resolution rate ≥ 50% — the pre-pass must settle at least half of
//!   the blocked-matmul points, else it has regressed into Unknown.
//! * Pre-pass-on wall ≤ pre-pass-off wall on MMT (best-of-2 each) — the
//!   pre-pass must pay for itself where it resolves.

use cme_analysis::{FindMisses, PrepassMode, Report, Threads, WalkStrategy};
use cme_bench::{timed, Scale, Table};
use cme_cache::CacheConfig;
use cme_ir::Program;
use cme_reuse::ReuseAnalysis;
use std::time::Duration;

struct Row {
    workload: String,
    points: u64,
    resolved: u64,
    off: Duration,
    on: Duration,
}

fn run(
    program: &Program,
    reuse: &ReuseAnalysis,
    cfg: CacheConfig,
    prepass: PrepassMode,
) -> (Report, Duration) {
    // Best of two: the second run rides warm caches, which is what the
    // serve engine's steady state looks like.
    let (a, ta) = timed(|| {
        FindMisses::with_reuse(program, cfg, reuse.clone())
            .strategy(WalkStrategy::SetSkip)
            .threads(Threads::Fixed(1))
            .prepass(prepass)
            .run()
    });
    let (_, tb) = timed(|| {
        FindMisses::with_reuse(program, cfg, reuse.clone())
            .strategy(WalkStrategy::SetSkip)
            .threads(Threads::Fixed(1))
            .prepass(prepass)
            .run()
    });
    (a, ta.min(tb))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let scale = Scale::from_args();
    let out = get("--out").unwrap_or_else(|| "BENCH_prepass.json".to_string());

    let workloads: Vec<(String, Program)> = match scale {
        Scale::Small => vec![
            ("mmt(N=16,BJ=16,BK=8)".into(), cme_workloads::mmt(16, 16, 8)),
            ("hydro(24x24)".into(), cme_workloads::hydro(24, 24)),
            ("mgrid(12)".into(), cme_workloads::mgrid(12)),
        ],
        Scale::Medium => vec![
            (
                "mmt(N=40,BJ=40,BK=20)".into(),
                cme_workloads::mmt(40, 40, 20),
            ),
            ("hydro(60x60)".into(), cme_workloads::hydro(60, 60)),
            ("mgrid(40)".into(), cme_workloads::mgrid(40)),
        ],
        Scale::Paper => vec![
            (
                "mmt(N=100,BJ=100,BK=50)".into(),
                cme_workloads::mmt(100, 100, 50),
            ),
            ("hydro(100x100)".into(), cme_workloads::hydro(100, 100)),
            ("mgrid(100)".into(), cme_workloads::mgrid(100)),
        ],
    };

    let cfg = CacheConfig::new(32 * 1024, 32, 2).expect("valid geometry");
    eprintln!(
        "bench_prepass: scale {}, cache {cfg}, serial set-skip",
        scale.label()
    );

    let mut rows: Vec<Row> = Vec::new();
    for (name, program) in &workloads {
        // Reuse vectors are shared; only classification is being timed.
        let reuse = ReuseAnalysis::analyze(program, cfg.line_bytes());

        let (off, off_t) = run(program, &reuse, cfg, PrepassMode::Off);
        eprintln!("{name}: prepass-off {off_t:?}");
        let (on, on_t) = run(program, &reuse, cfg, PrepassMode::On);
        let points: u64 = on.references().iter().map(|r| r.analyzed).sum();
        eprintln!(
            "{name}: prepass-on {on_t:?} ({}/{points} resolved)",
            on.prepass_resolved()
        );
        assert_eq!(
            off.references(),
            on.references(),
            "{name}: prepass-on and prepass-off reports diverged"
        );
        assert_eq!(
            off.prepass_resolved(),
            0,
            "{name}: off mode ran the pre-pass"
        );

        rows.push(Row {
            workload: name.clone(),
            points,
            resolved: on.prepass_resolved(),
            off: off_t,
            on: on_t,
        });
    }

    let mut table = Table::new(&[
        "workload",
        "points",
        "resolved %",
        "off (s)",
        "on (s)",
        "speedup",
    ]);
    let mut json_rows = Vec::new();
    for r in &rows {
        let rate = r.resolved as f64 / r.points.max(1) as f64;
        let speedup = r.off.as_secs_f64() / r.on.as_secs_f64().max(1e-9);
        table.row(vec![
            r.workload.clone(),
            r.points.to_string(),
            format!("{:.1}", 100.0 * rate),
            cme_bench::secs(r.off),
            cme_bench::secs(r.on),
            format!("{speedup:.2}x"),
        ]);
        json_rows.push(format!(
            "    {{\"workload\": \"{}\", \"points\": {}, \"resolved\": {}, \
             \"resolved_rate\": {:.4}, \"off_ms\": {:.1}, \"on_ms\": {:.1}, \
             \"speedup\": {:.2}}}",
            r.workload,
            r.points,
            r.resolved,
            rate,
            r.off.as_secs_f64() * 1e3,
            r.on.as_secs_f64() * 1e3,
            speedup,
        ));
    }
    table.print();

    let json = format!(
        "{{\n  \"scale\": \"{}\",\n  \"cache\": \"32KB/32B/2-way\",\n  \"threads\": 1,\n  \"hw_threads\": {},\n  \"strategy\": \"set-skip\",\n  \"prepass\": \"on-vs-off\",\n  \"rows\": [\n{}\n  ]\n}}\n",
        scale.label(),
        cme_bench::hw_threads(),
        json_rows.join(",\n")
    );
    std::fs::write(&out, &json).expect("write BENCH_prepass.json");
    eprintln!("-> {out}");

    // CI floors. MMT is the workload the pre-pass is built for: long
    // streaming rows with uniform verdicts.
    let mmt = rows
        .iter()
        .find(|r| r.workload.starts_with("mmt"))
        .expect("mmt row");
    let rate = mmt.resolved as f64 / mmt.points.max(1) as f64;
    assert!(
        rate >= 0.5,
        "pre-pass resolution regressed on {}: {:.1}% < 50%",
        mmt.workload,
        100.0 * rate
    );
    // At small scale the MMT walls are single-digit milliseconds, where
    // scheduler noise on a 1-CPU host swamps the real margin; allow 10%
    // there and stay strict where the measurement is meaningful.
    let tolerance = if scale == Scale::Small { 1.10 } else { 1.0 };
    assert!(
        mmt.on.as_secs_f64() <= mmt.off.as_secs_f64() * tolerance,
        "pre-pass no longer pays for itself on {}: on {:?} > off {:?}",
        mmt.workload,
        mmt.on,
        mmt.off
    );
}
