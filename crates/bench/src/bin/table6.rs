//! Regenerates Table 6: `EstimateMisses` vs the simulator on the three
//! whole programs (after abstract inlining), with run times and speedups.
//!
//! ```text
//! cargo run -p cme-bench --bin table6 --release [-- --scale small|medium|paper] [--threads n]
//! ```
//!
//! Expected shape: absolute miss-ratio errors under ~1 percentage point,
//! with the analytical time orders of magnitude below the simulation time,
//! and the gap growing with program size (the paper's Applu: 128s vs
//! almost 5 hours — three orders of magnitude).

use cme_analysis::{EstimateMisses, SamplingOptions};
use cme_bench::{paper_caches, scaled_caches, secs, timed, Scale, Table};
use cme_cache::Simulator;
use cme_ir::Program;
use cme_reuse::ReuseAnalysis;

fn main() {
    let scale = Scale::from_args();
    let sampling = SamplingOptions {
        threads: cme_bench::threads_from_args(),
        ..SamplingOptions::paper_default()
    };
    let (programs, caches): (Vec<(&str, Program)>, _) = match scale {
        Scale::Small => (
            vec![
                (
                    "tomcatv-like (N=32,T=8)",
                    cme_workloads::tomcatv_like(32, 8),
                ),
                ("swim-like (N=32,T=8)", cme_workloads::swim_like(32, 8)),
                ("applu-like (N=10,T=6)", cme_workloads::applu_like(10, 6)),
            ],
            scaled_caches(8),
        ),
        Scale::Medium => (
            vec![
                (
                    "tomcatv-like (N=64,T=30)",
                    cme_workloads::tomcatv_like(64, 30),
                ),
                ("swim-like (N=64,T=30)", cme_workloads::swim_like(64, 30)),
                ("applu-like (N=12,T=20)", cme_workloads::applu_like(12, 20)),
            ],
            scaled_caches(16),
        ),
        Scale::Paper => (
            vec![
                (
                    "tomcatv-like (N=256,T=100)",
                    cme_workloads::tomcatv_like(256, 100),
                ),
                (
                    "swim-like (N=256,T=100)",
                    cme_workloads::swim_like(256, 100),
                ),
                ("applu-like (N=16,T=75)", cme_workloads::applu_like(16, 75)),
            ],
            paper_caches(),
        ),
    };

    println!(
        "Table 6: EstimateMisses (c=95%, w=0.05) vs simulator on whole programs ({} scale)\n",
        scale.label()
    );
    let mut t = Table::new(&[
        "Program", "Cache", "Sim %", "E.M %", "Abs err", "E.M t(s)", "Sim t(s)", "Speedup",
    ]);
    for (name, program) in &programs {
        // Reuse vectors are shared across the three configurations and
        // capped per consumer on reference-dense programs (see DESIGN.md).
        let (reuse, reuse_t) =
            timed(|| ReuseAnalysis::analyze_capped(program, caches[0].1.line_bytes(), 128));
        eprintln!("[{name}] reuse vectors in {}s", secs(reuse_t));
        for (cname, cfg) in &caches {
            let (sim, sim_t) = timed(|| Simulator::new(*cfg).run(program));
            let (report, est_t) = timed(|| {
                EstimateMisses::with_reuse(program, *cfg, sampling.clone(), reuse.clone()).run()
            });
            let sim_ratio = 100.0 * sim.miss_ratio();
            let est_ratio = 100.0 * report.miss_ratio();
            let speedup = sim_t.as_secs_f64() / est_t.as_secs_f64().max(1e-9);
            t.row(vec![
                name.to_string(),
                cname.to_string(),
                format!("{sim_ratio:.2}"),
                format!("{est_ratio:.2}"),
                format!("{:.2}", (est_ratio - sim_ratio).abs()),
                secs(est_t),
                secs(sim_t),
                format!("{speedup:.1}x"),
            ]);
        }
    }
    t.print();
    println!(
        "\nPaper (32KB/32B): errors 0.25–0.84 percentage points; Applu analysed in ~128s vs ~4.8h simulated."
    );
}
