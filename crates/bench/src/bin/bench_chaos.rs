//! Chaos gate for the serve tier: a seeded fault schedule (torn writes,
//! read errors, dropped connections, delayed reads, worker panics) against
//! a live daemon over real TCP. The gate holds four promises at once:
//!
//! 1. **No lies.** Every completed response is byte-identical to the
//!    fault-free baseline; every failed request is a structured, retryable
//!    error — never a corrupt payload, never a hung or dead daemon.
//! 2. **Volume.** The schedule injects >= 100 faults, >= 5 of them worker
//!    panics, before the daemon is asked to shut down cleanly.
//! 3. **Crash-safe compaction.** A store compaction killed at every
//!    injected crash point (temp write, fsync, rename, swap) leaves a
//!    store that still answers correctly and reopens byte-consistently.
//! 4. **Chaos off = seed.** With no fault plan, the same requests return
//!    the same bytes as the baseline run.
//!
//! ```text
//! cargo run -p cme-bench --bin bench_chaos --release -- \
//!     [--out BENCH_chaos.json]
//! ```

use cme_ir::Fingerprint;
use cme_serve::client::{call_with_retry, RetryPolicy};
use cme_serve::json::Json;
use cme_serve::store::{Store, StoredResult};
use cme_serve::{FaultPlan, FaultSite, Server, ServerOptions};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// The request mix: exact and estimated analyses across workloads, plus a
/// spec-sourced trace replay. Every job is deterministic (estimates carry
/// a fixed seed), so byte-identity across runs is a hard assertion.
const JOBS: &[(&str, &str)] = &[
    (
        "mmt-exact",
        r#"{"cmd":"analyze","workload":"mmt","n":24,"bj":12,"bk":6,"mode":"exact","cache":16384}"#,
    ),
    (
        "hydro-exact",
        r#"{"cmd":"analyze","workload":"hydro","n":32,"mode":"exact","cache":8192}"#,
    ),
    (
        "mgrid-exact",
        r#"{"cmd":"analyze","workload":"mgrid","n":16,"mode":"exact","cache":8192}"#,
    ),
    (
        "mmt-estimate",
        r#"{"cmd":"analyze","workload":"mmt","n":40,"bj":20,"bk":10,"mode":"estimate","seed":7,"cache":32768}"#,
    ),
    (
        "hydro-estimate",
        r#"{"cmd":"analyze","workload":"hydro","n":40,"mode":"estimate","seed":11,"cache":16384}"#,
    ),
    (
        "trace-mmt",
        r#"{"cmd":"trace","workload":"mmt","n":16,"bj":8,"bk":4,"geometry":"2K:2:32"}"#,
    ),
];

/// Rounds over the job mix in the chaos phase. Sized so the per-request
/// fault sites (dropped connections, delayed reads) alone clear the
/// >= 100 injection floor.
const ROUNDS: usize = 25;

/// The seeded schedule. Deterministic caps pin the headline faults (every
/// early store append torn, the first compaction reads failing, the first
/// eight analysis attempts panicking); the per-mille sites supply volume.
const CHAOS_SPEC: &str =
    "seed=42,torn-write=1000x4,read-error=1000x3,delay-read=400,drop-conn=300,panic=1000x8,analysis-delay=300";

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cme-bench-chaos-{tag}-{}", std::process::id()))
}

struct Daemon {
    addr: SocketAddr,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

fn boot(store_dir: Option<PathBuf>, plan: Option<Arc<FaultPlan>>) -> Daemon {
    let server = Server::bind(ServerOptions {
        workers: 3,
        store_dir,
        faults: plan,
        ..ServerOptions::default()
    })
    .expect("bind chaos daemon");
    let addr = server.local_addr().unwrap();
    let thread = std::thread::spawn(move || server.run());
    Daemon {
        addr,
        thread: Some(thread),
    }
}

impl Daemon {
    fn shutdown(mut self) {
        let line = call_with_retry(
            self.addr,
            r#"{"cmd":"shutdown"}"#,
            &RetryPolicy::with_retries(3),
        )
        .expect("shutdown answered");
        assert_eq!(
            Json::parse(&line).unwrap().get("ok"),
            Some(&Json::Bool(true))
        );
        self.thread
            .take()
            .unwrap()
            .join()
            .expect("server thread")
            .expect("clean server exit");
    }
}

fn report_bytes(line: &str) -> &str {
    let start = line.find(r#""report":"#).expect("has report") + r#""report":"#.len();
    let end = line.find(r#","metrics":"#).expect("has metrics");
    &line[start..end]
}

#[derive(Default)]
struct Counters {
    completed: u64,
    structured_failures: u64,
    transport_failures: u64,
}

/// Drives one request to completion: transport faults reconnect, structured
/// retryable errors loop. Anything else — an unstructured error, a
/// non-retryable kind, or 40 fruitless tries — fails the gate.
fn run_to_completion(
    addr: SocketAddr,
    line: &str,
    policy: &RetryPolicy,
    c: &mut Counters,
) -> String {
    for _ in 0..40 {
        match call_with_retry(addr, line, policy) {
            Ok(resp) => {
                let v = Json::parse(&resp).expect("response is valid JSON");
                if v.get("ok").and_then(Json::as_bool) == Some(true) {
                    c.completed += 1;
                    return resp;
                }
                let kind = v.get("kind").and_then(Json::as_str).unwrap_or("?");
                assert!(
                    matches!(kind, "internal_error" | "retry_after" | "store_error"),
                    "unexpected failure kind under chaos: {resp}"
                );
                assert_eq!(
                    v.get("retryable"),
                    Some(&Json::Bool(true)),
                    "failures must be marked retryable: {resp}"
                );
                c.structured_failures += 1;
            }
            Err(_) => c.transport_failures += 1,
        }
    }
    panic!("request never completed under chaos: {line}");
}

/// Phase 3: compaction killed at each injected crash point must leave a
/// store that answers and reopens with the exact same payloads.
fn crash_point_sweep() -> u64 {
    let mut injected = 0;
    for site in [
        "compact-temp",
        "compact-fsync",
        "compact-rename",
        "compact-swap",
    ] {
        let dir = tmp(&format!("crash-{site}"));
        let _ = std::fs::remove_dir_all(&dir);
        let payloads: Vec<String> = (0..6)
            .map(|i| format!(r#"{{"miss_ratio":0.{i}25,"points":{i}0}}"#))
            .collect();
        {
            let s = Store::open(&dir, 16).expect("open store");
            for (i, p) in payloads.iter().enumerate() {
                s.put(
                    Fingerprint(i as u128 + 1),
                    StoredResult {
                        payload: Arc::new(p.clone()),
                        miss_ratio: 0.5,
                        points: 1,
                    },
                );
            }
        }
        // Corrupt the first frame so the pass has something to drop.
        let path = dir.join("results.cmes");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[30] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let plan = Arc::new(FaultPlan::parse(&format!("seed=9,{site}=1000x1")).unwrap());
        let s = Store::open_with(&dir, 16, Some(plan.clone())).expect("reopen store");
        let err = s.compact().expect_err("crash point fails the pass");
        assert!(err.to_string().contains("injected"), "{site}: {err}");
        injected += plan.injected_total();

        // Still answering, correct bytes, after the crash.
        for (i, p) in payloads.iter().enumerate().skip(1) {
            assert_eq!(
                &*s.get(Fingerprint(i as u128 + 1)).expect("survives").payload,
                p,
                "{site}: payload {i} after crashed compaction"
            );
        }
        // The crash-point cap is spent: retrying the compaction completes.
        // (Retry-safety is the whole point of the resync-on-error design.)
        let stats = s.compact().expect("second pass succeeds");
        assert_eq!(stats.frames, 5, "{site}");
        assert_eq!(s.dead_bytes(), 0, "{site}");

        // Disk truth: a clean reopen sees the same five frames.
        drop(s);
        let s = Store::open(&dir, 16).expect("clean reopen");
        assert_eq!(s.load_stats().loaded, 5, "{site}");
        assert_eq!(
            s.load_stats().corrupt,
            0,
            "{site}: compaction never leaves corruption"
        );
        for (i, p) in payloads.iter().enumerate().skip(1) {
            assert_eq!(
                &*s.get(Fingerprint(i as u128 + 1)).unwrap().payload,
                p,
                "{site}: byte-identical after reopen"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
        eprintln!("crash point {site}: recovered, byte-identical");
    }
    injected
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_chaos.json".to_string());

    // Injected worker panics are part of the schedule — keep their default
    // panic-hook noise out of the log, let real panics through.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.contains("injected:"))
            .or_else(|| {
                info.payload()
                    .downcast_ref::<String>()
                    .map(|s| s.contains("injected:"))
            })
            .unwrap_or(false);
        if !injected {
            default_hook(info);
        }
    }));

    // Phase 1: fault-free baseline bytes for every job.
    eprintln!("phase 1: fault-free baseline ({} jobs)", JOBS.len());
    let baseline: BTreeMap<&str, String> = {
        let daemon = boot(None, None);
        let policy = RetryPolicy::with_retries(0);
        let map = JOBS
            .iter()
            .map(|(key, line)| {
                let resp = call_with_retry(daemon.addr, line, &policy).expect("baseline request");
                let v = Json::parse(&resp).unwrap();
                assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{key}: {resp}");
                (*key, report_bytes(&resp).to_string())
            })
            .collect();
        daemon.shutdown();
        map
    };

    // Phase 2: the same jobs, many rounds, under the seeded fault schedule.
    eprintln!(
        "phase 2: chaos rounds ({ROUNDS} x {} jobs, spec {CHAOS_SPEC})",
        JOBS.len()
    );
    let plan = Arc::new(FaultPlan::parse(CHAOS_SPEC).expect("chaos spec"));
    let store_dir = tmp("store");
    let _ = std::fs::remove_dir_all(&store_dir);
    let daemon = boot(Some(store_dir.clone()), Some(plan.clone()));
    let mut policy = RetryPolicy::with_retries(8);
    policy.base = Duration::from_millis(1);
    policy.cap = Duration::from_millis(50);

    let mut counters = Counters::default();
    for round in 0..ROUNDS {
        for (key, line) in JOBS {
            let resp = run_to_completion(daemon.addr, line, &policy, &mut counters);
            assert_eq!(
                report_bytes(&resp),
                baseline[key],
                "round {round}, {key}: completed response must match the fault-free bytes"
            );
        }
        if round % 5 == 4 {
            // Live compaction under fire (its first reads are injected to
            // fail; the error is structured and the store resyncs).
            run_to_completion(daemon.addr, r#"{"cmd":"compact"}"#, &policy, &mut counters);
        }
    }

    // A concurrent burst: all workers hammered at once, same contract.
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                s.spawn(|| {
                    let mut c = Counters::default();
                    let resp = run_to_completion(daemon.addr, JOBS[0].1, &policy, &mut c);
                    assert_eq!(report_bytes(&resp), baseline[JOBS[0].0]);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("burst thread");
        }
    });

    // The daemon survived the whole schedule and says so.
    let ping = run_to_completion(daemon.addr, r#"{"cmd":"ping"}"#, &policy, &mut counters);
    assert_eq!(
        Json::parse(&ping).unwrap().get("pong"),
        Some(&Json::Bool(true))
    );
    let stats_line = run_to_completion(daemon.addr, r#"{"cmd":"stats"}"#, &policy, &mut counters);
    let stats = Json::parse(&stats_line).unwrap();
    let panics_caught = stats
        .get("stats")
        .unwrap()
        .get("panics_caught")
        .unwrap()
        .as_u64()
        .unwrap();
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&store_dir);

    let per_site: Vec<(FaultSite, u64)> = FaultSite::ALL
        .iter()
        .map(|&site| (site, plan.injected(site)))
        .collect();
    let daemon_injected = plan.injected_total();

    // Phase 3: compaction crash points.
    eprintln!("phase 3: compaction crash-point sweep");
    let crash_injected = crash_point_sweep();

    // Phase 4: chaos off — the same requests, the seed's bytes.
    eprintln!("phase 4: chaos-off byte-identity");
    {
        let daemon = boot(None, None);
        let policy = RetryPolicy::with_retries(0);
        for (key, line) in JOBS {
            let resp = call_with_retry(daemon.addr, line, &policy).expect("clean request");
            assert_eq!(
                report_bytes(&resp),
                baseline[key],
                "{key}: chaos-off bytes must equal the baseline"
            );
        }
        daemon.shutdown();
    }

    // The gate's arithmetic.
    let total = daemon_injected + crash_injected;
    assert!(
        total >= 100,
        "schedule must inject >= 100 faults, got {total}"
    );
    assert!(
        panics_caught >= 5,
        "schedule must include >= 5 worker panics, got {panics_caught}"
    );
    for (site, want) in [
        (FaultSite::TornWrite, 1),
        (FaultSite::ReadError, 1),
        (FaultSite::DropConn, 1),
    ] {
        let got = plan.injected(site);
        assert!(
            got >= want,
            "{}: {got} injections, want >= {want}",
            site.name()
        );
    }

    let sites_json: String = per_site
        .iter()
        .map(|(site, n)| format!("    \"{}\": {n}", site.name()))
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"spec\": \"{CHAOS_SPEC}\",\n  \"rounds\": {ROUNDS},\n  \"jobs\": {},\n  \"requests_completed\": {},\n  \"structured_failures\": {},\n  \"transport_failures\": {},\n  \"panics_caught\": {panics_caught},\n  \"faults_injected\": {{\n{sites_json}\n  }},\n  \"daemon_injected\": {daemon_injected},\n  \"crash_point_injected\": {crash_injected},\n  \"total_injected\": {total},\n  \"crash_points_recovered\": 4,\n  \"byte_identity\": \"held for every completed response and the chaos-off rerun\"\n}}\n",
        JOBS.len(),
        counters.completed,
        counters.structured_failures,
        counters.transport_failures,
    );
    std::fs::write(&out, &json).expect("write BENCH_chaos.json");
    eprintln!(
        "{total} faults injected ({panics_caught} panics caught), {} completed, {} structured failures -> {out}",
        counters.completed, counters.structured_failures
    );
    print!("{json}");
}
