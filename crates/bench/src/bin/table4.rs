//! Regenerates Table 4: `EstimateMisses` accuracy and run time on the
//! three kernels (`c = 95 %`, `w = 0.05`).
//!
//! ```text
//! cargo run -p cme-bench --bin table4 --release [-- --scale small|medium|paper] [--threads n]
//! ```
//!
//! Expected shape: absolute miss-ratio errors well below the requested
//! 0.05 interval (the paper reports ≤ 0.4 percentage points), at a small
//! fraction of the exact analysis / simulation time.

use cme_analysis::{EstimateMisses, SamplingOptions};
use cme_bench::{paper_caches, scaled_caches, secs, timed, Scale, Table};
use cme_cache::Simulator;
use cme_ir::Program;
use cme_reuse::ReuseAnalysis;

fn main() {
    let scale = Scale::from_args();
    let sampling = SamplingOptions {
        threads: cme_bench::threads_from_args(),
        ..SamplingOptions::paper_default()
    };
    let (kernels, caches): (Vec<(&str, Program)>, _) = match scale {
        Scale::Small => (
            vec![
                ("Hydro (KN=JN=24)", cme_workloads::hydro(24, 24)),
                ("MGRID (M=12)", cme_workloads::mgrid(12)),
                ("MMT (N=BJ=24,BK=12)", cme_workloads::mmt(24, 24, 12)),
            ],
            scaled_caches(4),
        ),
        Scale::Medium => (
            vec![
                ("Hydro (KN=JN=50)", cme_workloads::hydro(50, 50)),
                ("MGRID (M=32)", cme_workloads::mgrid(32)),
                ("MMT (N=BJ=50,BK=25)", cme_workloads::mmt(50, 50, 25)),
            ],
            scaled_caches(8),
        ),
        Scale::Paper => (
            vec![
                ("Hydro (KN=JN=100)", cme_workloads::hydro(100, 100)),
                ("MGRID (M=100)", cme_workloads::mgrid(100)),
                ("MMT (N=BJ=100,BK=50)", cme_workloads::mmt(100, 100, 50)),
            ],
            paper_caches(),
        ),
    };

    println!(
        "Table 4: EstimateMisses (c=95%, w=0.05) vs simulator ({} scale)\n",
        scale.label()
    );
    let mut t = Table::new(&[
        "Program", "Cache", "Sim %", "Est %", "Abs err", "Est t(s)", "Sim t(s)",
    ]);
    for (name, program) in &kernels {
        let (reuse, reuse_t) = timed(|| ReuseAnalysis::analyze(program, caches[0].1.line_bytes()));
        eprintln!("[{name}] reuse vectors in {}s", secs(reuse_t));
        for (cname, cfg) in &caches {
            let (sim, sim_t) = timed(|| Simulator::new(*cfg).run(program));
            let (report, est_t) = timed(|| {
                EstimateMisses::with_reuse(program, *cfg, sampling.clone(), reuse.clone()).run()
            });
            let sim_ratio = 100.0 * sim.miss_ratio();
            let est_ratio = 100.0 * report.miss_ratio();
            t.row(vec![
                name.to_string(),
                cname.to_string(),
                format!("{sim_ratio:.2}"),
                format!("{est_ratio:.2}"),
                format!("{:.2}", (est_ratio - sim_ratio).abs()),
                secs(est_t),
                secs(sim_t),
            ]);
        }
    }
    t.print();
    println!("\nPaper: absolute errors ≤ 0.37 percentage points, run times ≤ 0.5s per kernel.");
}
