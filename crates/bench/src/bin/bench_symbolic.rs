//! Timing harness for the symbolic miss-equation tier: runs cold
//! `FindMisses` (serial set-skip, pre-pass on) with the tier off and on,
//! verifies the reports are byte-identical, records the fraction of
//! references answered in closed form and the formula-vs-enumeration wall
//! time, and writes the numbers to `BENCH_symbolic.json`.
//!
//! ```text
//! cargo run -p cme-bench --bin bench_symbolic --release -- \
//!     [--scale small|medium|paper] [--out BENCH_symbolic.json]
//! ```
//!
//! Beyond the per-workload rows the harness exercises the tier's two
//! clients end to end:
//!
//! * a padding sweep (`cme-opt`) over a streaming conflict program, with
//!   sampling width forced tiny so every model evaluation is planned
//!   exhaustively — the regime where closed forms replace enumeration;
//! * a parametric serve job: the second, never-before-seen problem size
//!   must be answered from closed forms (certificate hit, zero points
//!   enumerated) with a payload byte-identical to an enumerated run.
//!
//! Floors (hard process-exit failures, used by `scripts/ci.sh`; the wall
//! ratios are enforced at `--scale paper` only, where enumeration is
//! expensive enough for the ratio to be meaningful):
//! * evaluating the closed forms must beat the enumeration they replace by
//!   ≥ 100× on the best-closing workload;
//! * the padding sweep with the tier on must run ≥ 10× faster than the
//!   enumerated sweep, with an identical plan;
//! * at every scale: byte-identical reports, a fully closed streaming
//!   workload, a parametric certificate hit with zero enumerated points.

use cme_analysis::{
    CancelToken, Classifier, FindMisses, PrepassMode, Report, SamplingOptions, Symbolic,
    SymbolicMode, Threads, WalkStrategy,
};
use cme_bench::{secs, timed, Scale, Table};
use cme_cache::CacheConfig;
use cme_ir::{LinExpr, Program, ProgramBuilder, SNode, SRef};
use cme_opt::{search_padding, PaddingOptions};
use cme_reuse::ReuseAnalysis;
use cme_serve::{CertStatus, Engine, Job};
use std::time::Duration;

struct Row {
    workload: String,
    points: u64,
    refs_total: u64,
    refs_closed: u64,
    points_closed: u64,
    off: Duration,
    on: Duration,
    formula: Duration,
}

/// Three equal streaming arrays — the tier's best case: every reference
/// closes, so the whole analysis reduces to formula evaluation.
fn stream3(elems: i64) -> Program {
    let mut b = ProgramBuilder::new("stream3");
    b.array("A", &[elems], 8);
    b.array("B", &[elems], 8);
    b.array("C", &[elems], 8);
    let i = LinExpr::var("I");
    b.push(SNode::loop_(
        "I",
        1,
        elems,
        vec![SNode::assign(
            SRef::new("C", vec![i.clone()]),
            vec![
                SRef::new("A", vec![i.clone()]),
                SRef::new("B", vec![i.clone()]),
            ],
        )],
    ));
    b.build().unwrap()
}

fn run(
    program: &Program,
    reuse: &ReuseAnalysis,
    cfg: CacheConfig,
    symbolic: SymbolicMode,
) -> (Report, Duration) {
    // Best of two: the second run rides warm caches, matching the serve
    // engine's steady state.
    let once = || {
        FindMisses::with_reuse(program, cfg, reuse.clone())
            .strategy(WalkStrategy::SetSkip)
            .threads(Threads::Fixed(1))
            .prepass(PrepassMode::On)
            .symbolic(symbolic)
            .run()
    };
    let (a, ta) = timed(once);
    let (_, tb) = timed(once);
    (a, ta.min(tb))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let scale = Scale::from_args();
    let out = get("--out").unwrap_or_else(|| "BENCH_symbolic.json".to_string());

    let (stream_elems, sweep_elems) = match scale {
        Scale::Small => (4096i64, 8192i64),
        Scale::Medium => (16384, 24576),
        Scale::Paper => (65536, 65536),
    };
    let mut workloads: Vec<(String, Program)> = match scale {
        Scale::Small => vec![
            ("mmt(N=16,BJ=16,BK=8)".into(), cme_workloads::mmt(16, 16, 8)),
            ("hydro(24x24)".into(), cme_workloads::hydro(24, 24)),
            ("mgrid(12)".into(), cme_workloads::mgrid(12)),
        ],
        Scale::Medium => vec![
            (
                "mmt(N=40,BJ=40,BK=20)".into(),
                cme_workloads::mmt(40, 40, 20),
            ),
            ("hydro(60x60)".into(), cme_workloads::hydro(60, 60)),
            ("mgrid(40)".into(), cme_workloads::mgrid(40)),
        ],
        Scale::Paper => vec![
            (
                "mmt(N=100,BJ=100,BK=50)".into(),
                cme_workloads::mmt(100, 100, 50),
            ),
            ("hydro(100x100)".into(), cme_workloads::hydro(100, 100)),
            ("mgrid(100)".into(), cme_workloads::mgrid(100)),
        ],
    };
    workloads.push((format!("stream3({stream_elems})"), stream3(stream_elems)));

    let cfg = CacheConfig::new(32 * 1024, 32, 2).expect("valid geometry");
    eprintln!(
        "bench_symbolic: scale {}, cache {cfg}, serial set-skip, prepass on",
        scale.label()
    );

    let mut rows: Vec<Row> = Vec::new();
    for (name, program) in &workloads {
        // Reuse vectors are shared; only classification is being timed.
        let reuse = ReuseAnalysis::analyze(program, cfg.line_bytes());

        let (off, off_t) = run(program, &reuse, cfg, SymbolicMode::Off);
        eprintln!("{name}: symbolic-off {off_t:?}");
        let (on, on_t) = run(program, &reuse, cfg, SymbolicMode::On);
        let points: u64 = on.references().iter().map(|r| r.analyzed).sum();
        eprintln!(
            "{name}: symbolic-on {on_t:?} ({}/{} refs closed, {} of {points} points)",
            on.symbolic_refs_closed(),
            on.references().len(),
            on.symbolic_points_closed(),
        );
        assert_eq!(
            off.references(),
            on.references(),
            "{name}: symbolic-on and symbolic-off reports diverged"
        );
        assert_eq!(
            off.symbolic_refs_closed(),
            0,
            "{name}: off mode ran the tier"
        );

        // Formula-only wall time: build the closed forms directly (the
        // fallback decision is part of the cost; fallback refs are cheap to
        // reject and are *not* enumerated here).
        let cl = Classifier::new(program, &reuse, cfg);
        let (_, fa) = timed(|| Symbolic::build(&cl, &CancelToken::never()).unwrap());
        let (sym, fb) = timed(|| Symbolic::build(&cl, &CancelToken::never()).unwrap());
        assert_eq!(
            sym.refs_closed() as u64,
            on.symbolic_refs_closed(),
            "{name}"
        );

        rows.push(Row {
            workload: name.clone(),
            points,
            refs_total: on.references().len() as u64,
            refs_closed: on.symbolic_refs_closed(),
            points_closed: on.symbolic_points_closed(),
            off: off_t,
            on: on_t,
            formula: fa.min(fb),
        });
    }

    // --- cme-opt padding sweep, enumerated vs symbolic -------------------
    // Tiny interval width forces every model evaluation onto the
    // exhaustive plan, so the sweep is pure enumeration with the tier off
    // and pure formula evaluation with it on.
    let sweep_program = stream3(sweep_elems);
    let sweep_cfg = CacheConfig::new(2048, 32, 1).expect("valid geometry");
    let sweep_opts = |symbolic: SymbolicMode| PaddingOptions {
        sampling: SamplingOptions {
            width: 0.001,
            symbolic,
            ..PaddingOptions::default().sampling
        },
        ..PaddingOptions::default()
    };
    let (plan_off, sweep_off) =
        timed(|| search_padding(&sweep_program, sweep_cfg, &sweep_opts(SymbolicMode::Off)));
    eprintln!(
        "padding sweep: enumerated {sweep_off:?} ({} evaluations)",
        plan_off.evaluations
    );
    let (plan_on, sweep_on) =
        timed(|| search_padding(&sweep_program, sweep_cfg, &sweep_opts(SymbolicMode::On)));
    eprintln!("padding sweep: symbolic {sweep_on:?}");
    assert_eq!(plan_off, plan_on, "symbolic sweep picked a different plan");
    let sweep_speedup = sweep_off.as_secs_f64() / sweep_on.as_secs_f64().max(1e-9);

    // --- parametric serve job: never-seen size, zero enumeration ---------
    let engine = Engine::in_memory(64);
    let first = stream3(stream_elems);
    let mut job = Job::exact(&first, cfg);
    job.threads = Threads::Fixed(1);
    let (_, status, cert) = engine.run_parametric(&job).expect("parametric job");
    assert_eq!(
        status,
        CertStatus::New,
        "first size must mint the certificate"
    );
    assert!(cert.fully_closed(), "stream3 must close fully");
    let second = stream3(stream_elems + 1111);
    let mut job2 = Job::exact(&second, cfg);
    job2.threads = Threads::Fixed(1);
    let (outcome, status2, _) = engine.run_parametric(&job2).expect("parametric job");
    assert_eq!(
        status2,
        CertStatus::Hit,
        "second size must hit the certificate"
    );
    assert!(!outcome.from_store, "a new size cannot be a store hit");
    assert_eq!(
        outcome.enumerated_points, 0,
        "certificate hit must not enumerate"
    );
    // The closed-form answer must be byte-identical to an enumerated one.
    let mut plain = Job::exact(&second, cfg);
    plain.use_store = false;
    plain.threads = Threads::Fixed(1);
    let enumerated = engine.run(&plain).expect("enumerated reference run");
    assert!(enumerated.enumerated_points > 0);
    assert_eq!(
        *outcome.payload, *enumerated.payload,
        "parametric payload diverged from the enumerated payload"
    );
    eprintln!(
        "parametric serve: stream3({}) answered from the certificate, 0 of {} points enumerated",
        stream_elems + 1111,
        outcome.points
    );

    // --- report ----------------------------------------------------------
    let mut table = Table::new(&[
        "workload",
        "points",
        "refs closed",
        "points closed %",
        "off (s)",
        "on (s)",
        "formula (s)",
        "speedup",
        "closed-ref speedup",
    ]);
    let mut json_rows = Vec::new();
    let mut best_closed_speedup = 0.0f64;
    for r in &rows {
        let share = r.points_closed as f64 / r.points.max(1) as f64;
        let speedup = r.off.as_secs_f64() / r.on.as_secs_f64().max(1e-9);
        // Enumeration wall attributable to the points the tier closed,
        // against the cost of building + evaluating the formulas.
        let closed_speedup = r.off.as_secs_f64() * share / r.formula.as_secs_f64().max(1e-9);
        best_closed_speedup = best_closed_speedup.max(closed_speedup);
        table.row(vec![
            r.workload.clone(),
            r.points.to_string(),
            format!("{}/{}", r.refs_closed, r.refs_total),
            format!("{:.1}", 100.0 * share),
            secs(r.off),
            secs(r.on),
            secs(r.formula),
            format!("{speedup:.2}x"),
            format!("{closed_speedup:.0}x"),
        ]);
        json_rows.push(format!(
            "    {{\"workload\": \"{}\", \"points\": {}, \"refs_total\": {}, \
             \"refs_closed\": {}, \"points_closed\": {}, \"closed_rate\": {:.4}, \
             \"off_ms\": {:.1}, \"on_ms\": {:.1}, \"formula_ms\": {:.3}, \
             \"speedup\": {:.2}, \"closed_ref_speedup\": {:.0}}}",
            r.workload,
            r.points,
            r.refs_total,
            r.refs_closed,
            r.points_closed,
            r.points_closed as f64 / r.points.max(1) as f64,
            r.off.as_secs_f64() * 1e3,
            r.on.as_secs_f64() * 1e3,
            r.formula.as_secs_f64() * 1e3,
            speedup,
            closed_speedup,
        ));
    }
    table.print();
    eprintln!(
        "padding sweep: {} -> {} ({sweep_speedup:.1}x), plans identical",
        secs(sweep_off),
        secs(sweep_on)
    );

    let json = format!(
        "{{\n  \"scale\": \"{}\",\n  \"cache\": \"32KB/32B/2-way\",\n  \"threads\": 1,\n  \
         \"hw_threads\": {},\n  \"strategy\": \"set-skip\",\n  \"prepass\": \"on\",\n  \
         \"rows\": [\n{}\n  ],\n  \
         \"padding_sweep\": {{\"workload\": \"stream3({})\", \"evaluations\": {}, \
         \"off_ms\": {:.1}, \"on_ms\": {:.1}, \"speedup\": {:.1}}},\n  \
         \"parametric\": {{\"workload\": \"stream3\", \"certificate\": \"hit\", \
         \"enumerated_points\": 0}}\n}}\n",
        scale.label(),
        cme_bench::hw_threads(),
        json_rows.join(",\n"),
        sweep_elems,
        plan_off.evaluations,
        sweep_off.as_secs_f64() * 1e3,
        sweep_on.as_secs_f64() * 1e3,
        sweep_speedup,
    );
    std::fs::write(&out, &json).expect("write BENCH_symbolic.json");
    eprintln!("-> {out}");

    // CI floors. The streaming workload must close fully at every scale.
    let stream = rows.last().expect("stream3 row");
    assert_eq!(
        stream.refs_closed, stream.refs_total,
        "stream3 no longer closes fully"
    );
    // Wall-clock ratios are only meaningful where enumeration is slow.
    if scale == Scale::Paper {
        assert!(
            best_closed_speedup >= 100.0,
            "closed forms no longer beat enumeration 100x: best {best_closed_speedup:.0}x"
        );
        assert!(
            sweep_speedup >= 10.0,
            "symbolic padding sweep below the 10x floor: {sweep_speedup:.1}x"
        );
    }
}
