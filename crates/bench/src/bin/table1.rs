//! Regenerates the paper's worked examples: the Figure 1 → Figure 2
//! normalisation with Table 1's iteration vectors, the §3.5 reuse vectors
//! for the `B` references (including the Fig. 3 cross-column vector), and
//! the Fig. 5 abstract-inlining base-address identities.
//!
//! ```text
//! cargo run -p cme-bench --bin table1 --release
//! ```

use cme_ir::{LinExpr, LinRel, ProgramBuilder, RelOp, SNode, SRef};
use cme_reuse::{ReuseAnalysis, ReuseKind};

fn main() {
    let n = 10i64;
    // The Figure 1 subroutine body.
    let mut b = ProgramBuilder::new("foo");
    b.array("A", &[n], 8);
    b.array("B", &[n, n], 8);
    let i1 = LinExpr::var("I1");
    let i2 = LinExpr::var("I2");
    b.push(SNode::loop_(
        "I1",
        2,
        n,
        vec![
            SNode::assign(SRef::new("A", vec![i1.offset(-1)]), vec![]).labelled("S1"),
            SNode::loop_(
                "I2",
                i1.clone(),
                n,
                vec![SNode::assign(
                    SRef::new("B", vec![i2.offset(-1), i1.clone()]),
                    vec![SRef::new("A", vec![i2.offset(-1)])],
                )
                .labelled("S2")],
            ),
            SNode::loop_(
                "I2",
                1,
                n,
                vec![
                    SNode::reads_only(vec![SRef::new("B", vec![i2.clone(), i1.clone()])])
                        .labelled("S3"),
                    SNode::if_(
                        vec![LinRel::new(i2.clone(), RelOp::Eq, LinExpr::constant(n))],
                        vec![SNode::reads_only(vec![SRef::new("A", vec![i1.clone()])])
                            .labelled("S4")],
                    ),
                ],
            ),
        ],
    ));
    b.push(SNode::loop_(
        "I1",
        1,
        n - 1,
        vec![SNode::assign(SRef::new("A", vec![i1.offset(1)]), vec![]).labelled("S5")],
    ));
    let program = b.build().expect("Figure 1 normalises");

    println!("Figure 2: the normalised program (N = {n})\n");
    print!("{}", cme_ir::pretty::render(&program));

    println!("\nTable 1: iteration vectors");
    for stmt in program.statements() {
        let labels: Vec<String> = stmt.label.iter().map(|l| l.to_string()).collect();
        let interleaved: Vec<String> = stmt
            .label
            .iter()
            .enumerate()
            .flat_map(|(k, l)| [l.to_string(), format!("I{}", k + 1)])
            .collect();
        println!(
            "  {:<4} label ({})  iteration vector ({})",
            stmt.name.clone().unwrap_or_default(),
            labels.join(","),
            interleaved.join(",")
        );
    }

    println!("\n§3.5: reuse vectors from B(I2-1,I1) to B(I2,I1) (Ls = 4 elements):");
    let reuse = ReuseAnalysis::analyze(&program, 32);
    let find_ref = |display: &str| {
        (0..program.references().len())
            .find(|&r| program.reference(r).display == display)
            .expect("reference exists")
    };
    let prod = find_ref("B(I2 - 1,I1)");
    let cons = find_ref("B(I2,I1)");
    for v in reuse.for_consumer(cons) {
        if v.producer == prod {
            let kind = match v.kind {
                ReuseKind::Temporal => "temporal",
                ReuseKind::Spatial => "spatial",
                ReuseKind::CrossColumnSpatial => "cross-column",
            };
            println!("  {:?}  ({kind})", v.vector);
        }
    }
    println!("\nFig. 3: self cross-column vectors of B(I2,I1):");
    for v in reuse.for_consumer(cons) {
        if v.producer == cons && v.kind == ReuseKind::CrossColumnSpatial {
            println!("  {:?}", v.vector);
        }
    }
    println!("\nPaper: temporal (0,0,1,-1); spatial (0,0,1,-2), (0,0,1,-3); cross-column (0,1,0,1-N) = (0,1,0,-9).");
}
