//! Regenerates Table 3: `FindMisses` vs the cache simulator on the three
//! kernels, for direct/2-way/4-way caches.
//!
//! ```text
//! cargo run -p cme-bench --bin table3 --release [-- --scale small|medium|paper] [--threads n]
//! ```
//!
//! Expected shape (the paper's result): exact agreement on Hydro and
//! MGRID; a slight overestimate on MMT (the transposed `WB`/`B` pair is
//! not uniformly generated).

use cme_analysis::FindMisses;
use cme_bench::{paper_caches, scaled_caches, secs, timed, Scale, Table};
use cme_cache::Simulator;
use cme_ir::Program;
use cme_reuse::ReuseAnalysis;

fn main() {
    let scale = Scale::from_args();
    let threads = cme_bench::threads_from_args();
    let (kernels, caches): (Vec<(&str, Program)>, _) = match scale {
        Scale::Small => (
            vec![
                ("Hydro (KN=JN=24)", cme_workloads::hydro(24, 24)),
                ("MGRID (M=12)", cme_workloads::mgrid(12)),
                ("MMT (N=BJ=24,BK=12)", cme_workloads::mmt(24, 24, 12)),
            ],
            scaled_caches(4),
        ),
        Scale::Medium => (
            vec![
                ("Hydro (KN=JN=50)", cme_workloads::hydro(50, 50)),
                ("MGRID (M=32)", cme_workloads::mgrid(32)),
                ("MMT (N=BJ=50,BK=25)", cme_workloads::mmt(50, 50, 25)),
            ],
            scaled_caches(8),
        ),
        Scale::Paper => (
            vec![
                ("Hydro (KN=JN=100)", cme_workloads::hydro(100, 100)),
                ("MGRID (M=100)", cme_workloads::mgrid(100)),
                ("MMT (N=BJ=100,BK=50)", cme_workloads::mmt(100, 100, 50)),
            ],
            paper_caches(),
        ),
    };

    println!(
        "Table 3: FindMisses vs simulator ({} scale, caches {})\n",
        scale.label(),
        caches[0].1
    );
    let mut t = Table::new(&[
        "Program",
        "Cache",
        "Sim misses",
        "Find misses",
        "Sim %",
        "Find %",
        "Abs err",
        "Find t(s)",
        "Sim t(s)",
    ]);
    for (name, program) in &kernels {
        // Reuse vectors depend only on the line size, shared by all three
        // configurations.
        let (reuse, reuse_t) = timed(|| ReuseAnalysis::analyze(program, caches[0].1.line_bytes()));
        eprintln!("[{name}] reuse vectors in {}s", secs(reuse_t));
        for (cname, cfg) in &caches {
            let (sim, sim_t) = timed(|| Simulator::new(*cfg).run(program));
            let (report, find_t) = timed(|| {
                FindMisses::with_reuse(program, *cfg, reuse.clone())
                    .threads(threads)
                    .run()
            });
            let sim_ratio = 100.0 * sim.miss_ratio();
            let find_ratio = 100.0 * report.miss_ratio();
            t.row(vec![
                name.to_string(),
                cname.to_string(),
                sim.total_misses().to_string(),
                format!("{}", report.exact_misses().expect("exhaustive")),
                format!("{sim_ratio:.2}"),
                format!("{find_ratio:.2}"),
                format!("{:.2}", (find_ratio - sim_ratio).abs()),
                secs(find_t),
                secs(sim_t),
            ]);
        }
    }
    t.print();
    println!(
        "\nPaper (32KB/32B, 933MHz P-III): Hydro and MGRID exact (err 0.00); MMT overestimates by ≤0.05%."
    );
}
