use cme_analysis::{EstimateMisses, SamplingOptions};
use cme_cache::CacheConfig;
use cme_reuse::ReuseAnalysis;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let p = cme_workloads::applu_like(12, 20);
    let src = cme_workloads::applu_like_source(12, 10);
    let st = src.stats();
    println!(
        "build: {:?} (src: {} subs {} calls {} refs; inlined {} refs, {} accesses)",
        t0.elapsed(),
        st.subroutines,
        st.calls,
        st.references,
        p.references().len(),
        p.total_accesses()
    );
    let t1 = Instant::now();
    let reuse = ReuseAnalysis::analyze_capped(&p, 32, 128);
    println!(
        "reuse gen: {:?} ({} vectors)",
        t1.elapsed(),
        reuse.vectors().len()
    );
    let cfg = CacheConfig::new(8 * 1024, 32, 1).unwrap();
    let t2 = Instant::now();
    let est = EstimateMisses::with_reuse(&p, cfg, SamplingOptions::paper_default(), reuse).run();
    println!(
        "classification: {:?} (ratio {:.4})",
        t2.elapsed(),
        est.miss_ratio()
    );
    let t3 = Instant::now();
    let sim = cme_cache::Simulator::new(cfg).run(&p);
    println!("sim: {:?} (ratio {:.4})", t3.elapsed(), sim.miss_ratio());
}
