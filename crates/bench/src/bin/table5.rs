//! Regenerates Table 5: statistics of the three whole programs.
//!
//! ```text
//! cargo run -p cme-bench --bin table5 --release
//! ```
//!
//! The workloads are structural stand-ins for the SPECfp95 originals (see
//! `cme-workloads`); the paper's numbers are printed alongside.

use cme_bench::Table;

fn main() {
    println!("Table 5: whole-program statistics (stand-ins; paper values in brackets)\n");
    let rows = [
        (
            "tomcatv-like",
            cme_workloads::tomcatv_like_source(64, 5),
            ("[190]", "[1]", "[0]", "[79]"),
        ),
        (
            "swim-like",
            cme_workloads::swim_like_source(64, 5),
            ("[429]", "[6]", "[6]", "[52]"),
        ),
        (
            "applu-like",
            cme_workloads::applu_like_source(16, 2),
            ("[3868]", "[16]", "[27]", "[2565]"),
        ),
    ];
    let mut t = Table::new(&[
        "Program",
        "#lines",
        "",
        "#subroutines",
        "",
        "#calls",
        "",
        "#references",
        "",
    ]);
    for (name, src, paper) in rows {
        let s = src.stats();
        t.row(vec![
            name.to_string(),
            s.lines.to_string(),
            paper.0.into(),
            s.subroutines.to_string(),
            paper.1.into(),
            s.calls.to_string(),
            paper.2.into(),
            s.references.to_string(),
            paper.3.into(),
        ]);
    }
    t.print();
    println!("\n(Reference counts are source-level; scalars later register-allocate away.)");
}
