//! Command-line analyser: run the cache model on a bundled workload (or a
//! FORTRAN file) and print the per-reference miss breakdown.
//!
//! ```text
//! cargo run -p cme-bench --bin analyze --release -- --workload hydro --n 50
//! cargo run -p cme-bench --bin analyze --release -- --file prog.f --param N=64 --exact
//! ```
//!
//! Options:
//! * `--workload <hydro|mgrid|mmt|tomcatv|swim|applu|livermore1|livermore5|dgefa|mxm>`
//! * `--file <path>` — parse a FORTRAN file instead (calls are inlined)
//! * `--param NAME=VALUE` — compile-time binding (repeatable)
//! * `--n <size>` — problem size for bundled workloads (default 32)
//! * `--iters <t>` — time steps for whole-program workloads (default 2)
//! * `--cache <bytes>` `--line <bytes>` `--assoc <k>` — geometry
//!   (default 32KB/32B/2)
//! * `--geometry SIZE:ASSOC:LINE` — geometry as one string, e.g.
//!   `48K:2:32`; overrides the three flags above and admits
//!   non-power-of-two set counts
//! * `--exact` — run `FindMisses` instead of `EstimateMisses`
//! * `--simulate` — also run the trace-driven simulator for comparison
//! * `--threads <n>` — worker threads for point classification
//!   (0 or absent = one per hardware thread; 1 = serial). The report is
//!   byte-identical for every value.
//! * `--prepass <on|off>` — the definitely-hit/definitely-miss pre-pass
//!   (default on). Pure accelerator: the report is byte-identical either
//!   way.
//! * `--symbolic` — count closed-form references symbolically instead of
//!   walking their iteration points (default off). Falls back per
//!   reference; the report is byte-identical either way.

use cme_analysis::{EstimateMisses, FindMisses, PrepassMode, SamplingOptions, SymbolicMode};
use cme_cache::{CacheConfig, Simulator};
use cme_ir::Program;
use std::collections::HashMap;
use std::process::ExitCode;

/// Prints a diagnostic and exits nonzero — bad input is a user error, not
/// a panic (exit code 2, like a compiler rejecting its input).
fn fail(message: &str) -> ExitCode {
    eprintln!("analyze: {message}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let has = |flag: &str| args.iter().any(|a| a == flag);

    let n: i64 = get("--n").map_or(32, |v| v.parse().expect("--n"));
    let iters: i64 = get("--iters").map_or(2, |v| v.parse().expect("--iters"));
    let cache_bytes: u64 = get("--cache").map_or(32 * 1024, |v| v.parse().expect("--cache"));
    let line: u64 = get("--line").map_or(32, |v| v.parse().expect("--line"));
    let assoc: u32 = get("--assoc").map_or(2, |v| v.parse().expect("--assoc"));
    let cfg = if let Some(spec) = get("--geometry") {
        match CacheConfig::parse_geometry(&spec) {
            Ok(cfg) => cfg,
            Err(e) => return fail(&e.to_string()),
        }
    } else {
        match CacheConfig::new(cache_bytes, line, assoc) {
            Ok(cfg) => cfg,
            Err(e) => return fail(&e.to_string()),
        }
    };

    let program: Program = if let Some(path) = get("--file") {
        let mut params: HashMap<String, i64> = HashMap::new();
        let mut i = 0;
        while i < args.len() {
            if args[i] == "--param" {
                let Some(kv) = args.get(i + 1) else {
                    return fail("--param needs NAME=VALUE");
                };
                let Some((k, v)) = kv.split_once('=') else {
                    return fail(&format!("--param wants NAME=VALUE, got `{kv}`"));
                };
                let Ok(v) = v.parse() else {
                    return fail(&format!("--param value `{v}` is not an integer"));
                };
                params.insert(k.to_uppercase(), v);
            }
            i += 1;
        }
        match cme_bench::load_fortran(&path, &params) {
            Ok(p) => p,
            Err(diagnostic) => return fail(&diagnostic),
        }
    } else {
        match get("--workload").as_deref().unwrap_or("hydro") {
            "hydro" => cme_workloads::hydro(n, n),
            "mgrid" => cme_workloads::mgrid(n),
            "mmt" => cme_workloads::mmt(n, (n / 2).max(1), (n / 4).max(1)),
            "tomcatv" => cme_workloads::tomcatv_like(n, iters),
            "swim" => cme_workloads::swim_like(n, iters),
            "applu" => cme_workloads::applu_like(n, iters),
            "livermore1" => cme_workloads::livermore1(n * n),
            "livermore5" => cme_workloads::livermore5(n * n),
            "dgefa" => cme_workloads::dgefa(n),
            "mxm" => cme_workloads::mxm(n),
            other => return fail(&format!("unknown workload `{other}`")),
        }
    };

    println!(
        "program `{}`: {} references, {} dynamic accesses, cache {}",
        program.name(),
        program.references().len(),
        program.total_accesses(),
        cfg
    );

    let threads = cme_bench::threads_from_args();
    let prepass = match get("--prepass").as_deref() {
        None | Some("on") => PrepassMode::On,
        Some("off") => PrepassMode::Off,
        Some(other) => return fail(&format!("unknown prepass mode `{other}`")),
    };
    let symbolic = if has("--symbolic") {
        SymbolicMode::On
    } else {
        SymbolicMode::Off
    };
    let report = if has("--exact") {
        FindMisses::new(&program, cfg)
            .threads(threads)
            .prepass(prepass)
            .symbolic(symbolic)
            .run()
    } else {
        let opts = SamplingOptions {
            threads,
            prepass,
            symbolic,
            ..SamplingOptions::paper_default()
        };
        EstimateMisses::new(&program, cfg, opts).run()
    };
    print!("{}", report.render(&program));
    println!(
        "\n{} in {:?}: miss ratio {:.2}%",
        if has("--exact") {
            "FindMisses"
        } else {
            "EstimateMisses"
        },
        report.elapsed(),
        100.0 * report.miss_ratio()
    );
    if report.symbolic_refs_closed() > 0 {
        println!(
            "symbolic tier closed {} of {} references ({} points in closed form)",
            report.symbolic_refs_closed(),
            report.references().len(),
            report.symbolic_points_closed()
        );
    }
    if report.prepass_resolved() > 0 {
        let analyzed: u64 = report.references().iter().map(|r| r.analyzed).sum();
        println!(
            "pre-pass resolved {} of {} points ({:.1}%)",
            report.prepass_resolved(),
            analyzed,
            100.0 * report.prepass_resolved() as f64 / analyzed.max(1) as f64
        );
    }

    if has("--simulate") {
        let t = std::time::Instant::now();
        let sim = Simulator::new(cfg).run(&program);
        println!(
            "Simulator in {:?}: miss ratio {:.2}% ({} misses)",
            t.elapsed(),
            100.0 * sim.miss_ratio(),
            sim.total_misses()
        );
    }
    ExitCode::SUCCESS
}
