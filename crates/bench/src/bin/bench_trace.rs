//! Timing and cross-validation harness for the trace subsystem: generates
//! the exact address stream of each paper workload, measures streaming LRU
//! replay throughput, and checks the load-bearing identity of the whole
//! repo — analytical miss counts vs trace-driven replay — on a
//! power-of-two and a non-power-of-two geometry. Writes `BENCH_trace.json`.
//!
//! ```text
//! cargo run -p cme-bench --bin bench_trace --release -- \
//!     [--scale small|medium|paper] [--threads N] [--out BENCH_trace.json]
//! ```
//!
//! Checks enforced (exit 2 on failure):
//! * framed encode → decode returns the generated words bit-for-bit, and
//!   re-encoding is byte-identical (the store fingerprint hangs off these
//!   bytes);
//! * replay totals equal the in-memory `cme-cache` simulator on every
//!   workload × geometry;
//! * `FindMisses` equals replay *exactly* on hydro and mgrid; on MMT the
//!   analytical count is a paper-faithful overestimate (`pred >= sim`,
//!   miss-ratio drift under 2%) and the delta is recorded;
//! * a repeat replay through the serve engine answers from the store with
//!   a byte-identical payload;
//! * at `--scale paper`, serial replay of the MMT trace sustains at least
//!   10M accesses/sec.

use cme_analysis::FindMisses;
use cme_bench::{timed, Scale};
use cme_cache::{CacheConfig, Simulator};
use cme_ir::Program;
use cme_serve::Engine;
use std::process::ExitCode;

const PAPER_FLOOR_ACCESSES_PER_SEC: f64 = 10_000_000.0;

fn fail(message: &str) -> ExitCode {
    eprintln!("bench_trace: {message}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let scale = Scale::from_args();
    let threads = cme_bench::threads_from_args();
    let out = get("--out").unwrap_or_else(|| "BENCH_trace.json".to_string());

    let workloads: Vec<(String, Program)> = match scale {
        Scale::Small => vec![
            ("mmt(N=16,BJ=16,BK=8)".into(), cme_workloads::mmt(16, 16, 8)),
            ("hydro(24x24)".into(), cme_workloads::hydro(24, 24)),
            ("mgrid(12)".into(), cme_workloads::mgrid(12)),
        ],
        Scale::Medium => vec![
            (
                "mmt(N=40,BJ=40,BK=20)".into(),
                cme_workloads::mmt(40, 40, 20),
            ),
            ("hydro(60x60)".into(), cme_workloads::hydro(60, 60)),
            ("mgrid(40)".into(), cme_workloads::mgrid(40)),
        ],
        Scale::Paper => vec![
            (
                "mmt(N=100,BJ=100,BK=50)".into(),
                cme_workloads::mmt(100, 100, 50),
            ),
            ("hydro(100x100)".into(), cme_workloads::hydro(100, 100)),
            ("mgrid(100)".into(), cme_workloads::mgrid(100)),
        ],
    };
    // One power-of-two geometry (shift/mask indexing) and one with a
    // non-power-of-two set count (Euclidean fallback + dense congruence
    // tier on the analytical side).
    let geometries: Vec<CacheConfig> = ["32K:2:32", "48K:2:32"]
        .iter()
        .map(|s| CacheConfig::parse_geometry(s).expect("valid geometry"))
        .collect();

    let nthreads = threads.count();
    eprintln!(
        "bench_trace: scale {}, {nthreads} worker threads",
        scale.label()
    );

    let mut rows: Vec<String> = Vec::new();
    let mut mmt_throughput = 0.0f64;
    for (name, program) in &workloads {
        let (words, gen_t) = timed(|| cme_trace::generate(program).expect("addresses fit u32"));

        // Framed roundtrip: decode returns the generated words exactly and
        // the encoding is deterministic (store keys are over these bytes).
        let cfg0 = geometries[0];
        let framed = cme_trace::frame_bytes(&cfg0, &words);
        if framed != cme_trace::frame_bytes(&cfg0, &words) {
            return fail(&format!("{name}: framed encoding is not deterministic"));
        }
        let reader = cme_trace::TraceReader::new(&framed[..]).expect("framed header");
        let decoded = reader.read_to_end().expect("framed payload");
        if decoded != words {
            return fail(&format!("{name}: framed roundtrip lost words"));
        }

        let is_mmt = name.starts_with("mmt");
        for cfg in &geometries {
            // Serial replay, timed: this is the throughput number.
            let (serial, serial_t) = timed(|| cme_trace::replay_parallel(*cfg, &words, 1));
            let per_sec = serial.accesses as f64 / serial_t.as_secs_f64().max(1e-9);
            if is_mmt && *cfg == geometries[0] {
                mmt_throughput = per_sec;
            }

            // Parallel replay must reproduce the serial stats exactly.
            let parallel = cme_trace::replay_parallel(*cfg, &words, nthreads);
            if parallel != serial {
                return fail(&format!(
                    "{name} {cfg}: parallel replay diverges from serial"
                ));
            }

            // Replay must agree with the in-memory reference simulator.
            let sim = Simulator::new(*cfg).run(program);
            if serial.accesses != sim.total_accesses() || serial.misses() != sim.total_misses() {
                return fail(&format!("{name} {cfg}: replay diverges from simulator"));
            }

            // The paper's identity: analytical misses vs measured misses.
            let (report, analyse_t) =
                timed(|| FindMisses::new(program, *cfg).threads(threads).run());
            let pred = report
                .exact_misses()
                .expect("exact analysis yields exact misses");
            let measured = serial.misses();
            let delta = pred as i64 - measured as i64;
            if is_mmt {
                // Paper-faithful overestimate: cross-nest group reuse is
                // not expressible as constant reuse vectors.
                if pred < measured {
                    return fail(&format!(
                        "{name} {cfg}: analytical count {pred} under measured {measured}"
                    ));
                }
                let drift = (report.miss_ratio() - serial.miss_ratio()).abs();
                if drift >= 0.02 {
                    return fail(&format!("{name} {cfg}: miss-ratio drift {drift:.4} >= 2%"));
                }
            } else if pred != measured {
                return fail(&format!(
                    "{name} {cfg}: analytical {pred} != measured {measured}"
                ));
            }

            eprintln!(
                "{name} {cfg}: {} accesses, replay {:.1}M/s, analytical {pred} vs measured {measured} (delta {delta:+})",
                serial.accesses,
                per_sec / 1e6
            );
            rows.push(format!(
                "    {{\"workload\": \"{name}\", \"geometry\": \"{}\", \"accesses\": {}, \"gen_ms\": {:.3}, \"replay_ms\": {:.3}, \"accesses_per_sec\": {:.0}, \"analyse_ms\": {:.3}, \"analytical_misses\": {pred}, \"measured_misses\": {measured}, \"delta\": {delta}}}",
                cfg.geometry_string(),
                serial.accesses,
                gen_t.as_secs_f64() * 1e3,
                serial_t.as_secs_f64() * 1e3,
                per_sec,
                analyse_t.as_secs_f64() * 1e3,
            ));
        }
    }

    if scale == Scale::Paper && mmt_throughput < PAPER_FLOOR_ACCESSES_PER_SEC {
        return fail(&format!(
            "paper-scale MMT serial replay {:.1}M accesses/sec under the {:.0}M floor",
            mmt_throughput / 1e6,
            PAPER_FLOOR_ACCESSES_PER_SEC / 1e6
        ));
    }

    // Serve-engine leg: a repeat replay answers from the store with a
    // byte-identical payload.
    let engine = Engine::in_memory(16);
    let (ref name, ref program) = workloads[0];
    let words = cme_trace::generate(program).expect("addresses fit u32");
    let bytes = cme_trace::frame_bytes(&geometries[0], &words);
    let cold = engine
        .run_trace(&bytes, geometries[0], nthreads, true)
        .expect("cold trace replay");
    let hot = engine
        .run_trace(&bytes, geometries[0], nthreads, true)
        .expect("hot trace replay");
    if cold.from_store || !hot.from_store {
        return fail(&format!("{name}: engine store cold/hot sequence broken"));
    }
    if cold.payload != hot.payload || cold.fingerprint != hot.fingerprint {
        return fail(&format!("{name}: stored trace payload not byte-identical"));
    }

    let json = format!(
        "{{\n  \"scale\": \"{}\",\n  \"threads\": {nthreads},\n  \"hw_threads\": {},\n  \"mmt_serial_accesses_per_sec\": {:.0},\n  \"paper_floor_accesses_per_sec\": {:.0},\n  \"engine_hot_from_store\": true,\n  \"rows\": [\n{}\n  ]\n}}\n",
        scale.label(),
        cme_bench::hw_threads(),
        mmt_throughput,
        PAPER_FLOOR_ACCESSES_PER_SEC,
        rows.join(",\n"),
    );
    std::fs::write(&out, &json).expect("write BENCH_trace.json");
    eprintln!("-> {out}");
    print!("{json}");
    ExitCode::SUCCESS
}
