//! Timing harness for the amortized geometry-sweep engine: evaluates a
//! 24-cell design-space grid (sizes × associativities × line sizes) once
//! through [`SweepPlan`] and once naively — an independent cold
//! `FindMisses` per geometry — verifies every grid cell is byte-identical
//! to its naive twin, measures the amortization, exercises the serve
//! engine's sweep/store round trip, and writes the numbers to
//! `BENCH_sweep.json`.
//!
//! ```text
//! cargo run -p cme-bench --bin bench_sweep --release -- \
//!     [--scale small|medium|paper] [--out BENCH_sweep.json]
//! ```
//!
//! Both sides run serially (`Threads::Fixed(1)`): the amortization is a
//! per-geometry work reduction — one reuse analysis per distinct line
//! size instead of one per cell, plus closed-form classification across
//! the whole grid — not a parallel speedup.
//!
//! Floors (hard process-exit failures, used by `scripts/ci.sh`):
//! * at every scale: each of the 24 cells renders bytes identical to an
//!   independent single-geometry run, for both the streaming and the
//!   mixed workload; a repeat sweep through the serve engine computes
//!   nothing (every cell answered from the store);
//! * at `--scale paper` only (where per-geometry work is expensive enough
//!   for the ratio to be meaningful): the shared-plan sweep must beat the
//!   naive per-geometry loop by ≥ 5× on the streaming workload.

use cme_analysis::{FindMisses, Report, SweepOptions, SweepPlan, Threads};
use cme_bench::{secs, timed, Scale};
use cme_cache::CacheConfig;
use cme_ir::{LinExpr, Program, ProgramBuilder, SNode, SRef};
use cme_serve::engine::render_payload;
use cme_serve::{AnalysisMode, Engine, SweepJob};
use std::time::Duration;

/// The benchmark grid: 4 sizes × 3 associativities × 2 line sizes.
const GRID: &str = "8K,16K,32K,64K:1,2,4:16,32";

/// Three equal streaming arrays (the symbolic tier's showcase): every
/// reference closes, so the sweep's cost is the two reuse analyses plus
/// formula evaluation while the naive loop enumerates 24 times.
fn stream3(elems: i64) -> Program {
    let mut b = ProgramBuilder::new("stream3");
    b.array("A", &[elems], 8);
    b.array("B", &[elems], 8);
    b.array("C", &[elems], 8);
    let i = LinExpr::var("I");
    b.push(SNode::loop_(
        "I",
        1,
        elems,
        vec![SNode::assign(
            SRef::new("C", vec![i.clone()]),
            vec![
                SRef::new("A", vec![i.clone()]),
                SRef::new("B", vec![i.clone()]),
            ],
        )],
    ));
    b.build().unwrap()
}

struct Row {
    workload: String,
    cells: usize,
    points: u64,
    naive: Duration,
    sweep: Duration,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.naive.as_secs_f64() / self.sweep.as_secs_f64().max(1e-9)
    }
}

/// Runs the naive loop and the shared-plan sweep over `grid`, asserts
/// byte-identity cell by cell, and returns the timing row.
fn measure(name: &str, program: &Program, grid: &[CacheConfig]) -> Row {
    // Naive: what a design-space scan costs today — an independent
    // analysis per geometry, each rebuilding its own reuse analysis.
    let (naive_reports, naive) = timed(|| -> Vec<Report> {
        grid.iter()
            .map(|g| {
                FindMisses::new(program, *g)
                    .threads(Threads::Fixed(1))
                    .run()
            })
            .collect()
    });

    // Amortized: one plan (reuse per distinct line size), one fan-out.
    let opts = SweepOptions {
        threads: Threads::Fixed(1),
        ..SweepOptions::default()
    };
    let (sweep_reports, sweep) = timed(|| SweepPlan::new(program, grid).run(grid, &opts));

    let mut points = 0u64;
    for ((g, naive_r), sweep_r) in grid.iter().zip(&naive_reports).zip(&sweep_reports) {
        let naive_bytes = render_payload(program, *g, &AnalysisMode::Exact, naive_r);
        let sweep_bytes = render_payload(program, *g, &AnalysisMode::Exact, sweep_r);
        assert_eq!(
            naive_bytes, sweep_bytes,
            "{name} cell {g} diverged from its independent run"
        );
        points += sweep_r.total_accesses();
    }
    eprintln!(
        "  {name:<16} {} cells  naive {:>9}  sweep {:>9}  ({:.1}x)",
        grid.len(),
        secs(naive),
        secs(sweep),
        naive.as_secs_f64() / sweep.as_secs_f64().max(1e-9),
    );
    Row {
        workload: name.to_string(),
        cells: grid.len(),
        points,
        naive,
        sweep,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let scale = Scale::from_args();
    let out = get("--out").unwrap_or_else(|| "BENCH_sweep.json".to_string());

    let (stream_elems, hydro_n) = match scale {
        Scale::Small => (4096i64, 24i64),
        Scale::Medium => (16384, 60),
        Scale::Paper => (65536, 100),
    };
    let grid = CacheConfig::parse_geometry_grid(GRID).expect("benchmark grid is valid");
    eprintln!(
        "bench_sweep: scale {}, grid {GRID} ({} cells, serial both sides)",
        scale.label(),
        grid.len()
    );

    let stream = stream3(stream_elems);
    let hydro = cme_workloads::hydro(hydro_n, hydro_n);
    let rows = [
        measure(&format!("stream3({stream_elems})"), &stream, &grid),
        measure(&format!("hydro({hydro_n}x{hydro_n})"), &hydro, &grid),
    ];

    // The serve round trip: a cold sweep populates the store, so the
    // repeat sweep — and any later single query on a swept geometry — is
    // pure lookup.
    let engine = Engine::in_memory(grid.len() * 2);
    let (cold, cold_wall) = timed(|| {
        engine
            .run_sweep(&SweepJob::exact(&hydro, grid.clone()))
            .expect("sweep carries no deadline")
    });
    let (hot, hot_wall) = timed(|| {
        engine
            .run_sweep(&SweepJob::exact(&hydro, grid.clone()))
            .expect("sweep carries no deadline")
    });
    assert_eq!(
        cold.computed as usize,
        grid.len(),
        "cold sweep computes all"
    );
    assert_eq!(hot.computed, 0, "repeat sweep must answer from the store");
    assert_eq!(hot.store_hits as usize, grid.len());
    for (a, b) in cold.cells.iter().zip(&hot.cells) {
        assert_eq!(a.payload, b.payload, "store round trip must be byte-exact");
    }
    eprintln!(
        "  serve store:     cold sweep {:>9}  repeat {:>9} (0 cells recomputed)",
        secs(cold_wall),
        secs(hot_wall)
    );

    let row_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"workload\": \"{}\", \"cells\": {}, \"points\": {}, \
                 \"naive_s\": {:.6}, \"sweep_s\": {:.6}, \"speedup\": {:.2}, \
                 \"cells_identical\": true}}",
                r.workload,
                r.cells,
                r.points,
                r.naive.as_secs_f64(),
                r.sweep.as_secs_f64(),
                r.speedup()
            )
        })
        .collect();
    let json = format!
    (
        "{{\n  \"scale\": \"{}\",\n  \"grid\": \"{GRID}\",\n  \"cells\": {},\n  \"threads\": 1,\n  \"workloads\": [\n{}\n  ],\n  \"serve\": {{\"cold_sweep_s\": {:.6}, \"repeat_sweep_s\": {:.6}, \"repeat_computed\": {}}}\n}}\n",
        scale.label(),
        grid.len(),
        row_json.join(",\n"),
        cold_wall.as_secs_f64(),
        hot_wall.as_secs_f64(),
        hot.computed
    );
    std::fs::write(&out, &json).expect("write BENCH_sweep.json");
    eprintln!("bench_sweep: wrote {out}");

    // CI floor: the amortization must be real where per-geometry work is
    // expensive (paper scale, streaming workload).
    if scale == Scale::Paper {
        let stream_row = &rows[0];
        assert!(
            stream_row.speedup() >= 5.0,
            "amortization floor: sweep must be >=5x naive at paper scale, got {:.2}x",
            stream_row.speedup()
        );
    }
}
