//! Regenerates Table 2: the census of actual parameters and calls over a
//! synthetic suite mirroring SPECfp95 + Perfect Club.
//!
//! ```text
//! cargo run -p cme-bench --bin table2 --release
//! ```

use cme_bench::Table;
use cme_inline::{census, Census};
use cme_workloads::table2_suite;

fn main() {
    println!("Table 2: actual parameters and calls (synthetic suite mirroring SPECfp95+Perfect)\n");
    let mut t = Table::new(&[
        "Program", "P-able", "R-able", "N-able", "Calls", "A-able", "A-able %",
    ]);
    let mut total = Census::default();
    for (row, program) in table2_suite() {
        let c = census(&program);
        total = total.add(&c);
        t.row(vec![
            row.name.to_string(),
            c.propagateable.to_string(),
            c.renameable.to_string(),
            c.non_analysable.to_string(),
            c.calls.to_string(),
            c.analysable_calls.to_string(),
            format!("{:.2}", c.analysable_pct()),
        ]);
    }
    t.row(vec![
        "TOTAL".into(),
        total.propagateable.to_string(),
        total.renameable.to_string(),
        total.non_analysable.to_string(),
        total.calls.to_string(),
        total.analysable_calls.to_string(),
        format!("{:.2}", total.analysable_pct()),
    ]);
    let acts = total.total_actuals() as f64;
    t.row(vec![
        "%".into(),
        format!("{:.2}", 100.0 * total.propagateable as f64 / acts),
        format!("{:.2}", 100.0 * total.renameable as f64 / acts),
        format!("{:.2}", 100.0 * total.non_analysable as f64 / acts),
        "100".into(),
        String::new(),
        format!("{:.2}", total.analysable_pct()),
    ]);
    t.print();
    println!("\nPaper totals: P 9202 (87.09%), R 234 (2.21%), N 1130 (10.89%); 2604 calls, 2251 analysable (86.44%).");
}
