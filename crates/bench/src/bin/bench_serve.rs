//! Timing harness for the analysis service's content-addressed result
//! store: runs the same exact MMT analysis twice through one `Engine` —
//! cold (full classification) then hot (store fetch) — verifies the two
//! payloads are byte-identical, and writes the numbers to
//! `BENCH_serve.json`.
//!
//! ```text
//! cargo run -p cme-bench --bin bench_serve --release -- \
//!     [--scale small|medium|paper] [--threads N] [--out BENCH_serve.json]
//! ```
//!
//! At `--scale paper` (MMT N=BJ=100, BK=50 on the paper's 32KB/32B/2-way
//! cache) the harness asserts the hot query is at least 100x faster than
//! the cold one — the whole point of a persistent service: the second
//! asker pays a hash lookup, not a whole-program analysis.

use cme_bench::{timed, Scale};
use cme_cache::CacheConfig;
use cme_serve::{Engine, Job};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let scale = Scale::from_args();
    let threads = cme_bench::threads_from_args();
    let out = get("--out").unwrap_or_else(|| "BENCH_serve.json".to_string());

    let (n, bj, bk) = match scale {
        Scale::Small => (24, 12, 6),
        Scale::Medium => (48, 24, 12),
        Scale::Paper => (100, 100, 50),
    };
    let cfg = CacheConfig::new(32 * 1024, 32, 2).expect("valid geometry");
    let program = cme_workloads::mmt(n, bj, bk);
    eprintln!(
        "MMT (N={n}, BJ={bj}, BK={bk}): {} accesses, cache {cfg}, {} threads",
        program.total_accesses(),
        threads.count()
    );

    let engine = Engine::in_memory(16);
    let job = {
        let mut j = Job::exact(&program, cfg);
        j.threads = threads;
        j
    };

    let (cold, cold_t) = timed(|| engine.run(&job).expect("no deadline"));
    assert!(!cold.from_store, "first run must be cold");
    eprintln!("cold: {cold_t:?} ({} points)", cold.points);

    // The hot path measured properly: N repeat queries, each verified
    // byte-identical (the tentpole guarantee — repeat queries return the
    // stored bytes), with the latency distribution rather than a single
    // possibly-lucky sample.
    const HOT_QUERIES: usize = 200;
    let mut hot_lat = Vec::with_capacity(HOT_QUERIES);
    for _ in 0..HOT_QUERIES {
        let (hot, hot_t) = timed(|| engine.run(&job).expect("no deadline"));
        assert!(hot.from_store, "repeat run must hit the store");
        assert_eq!(
            cold.payload.as_str(),
            hot.payload.as_str(),
            "hot payload must be byte-identical to the cold one"
        );
        assert_eq!(cold.fingerprint, hot.fingerprint);
        hot_lat.push(hot_t);
    }
    hot_lat.sort();
    let hot_t = hot_lat[HOT_QUERIES / 2];
    let p50_us = hot_t.as_secs_f64() * 1e6;
    let p99_us = hot_lat[HOT_QUERIES * 99 / 100].as_secs_f64() * 1e6;
    eprintln!("hot:  p50 {p50_us:.1}us  p99 {p99_us:.1}us over {HOT_QUERIES} queries");

    let speedup = cold_t.as_secs_f64() / hot_t.as_secs_f64().max(1e-9);
    if scale == Scale::Paper {
        assert!(
            speedup >= 100.0,
            "paper-size hot query must be >=100x faster than cold, got {speedup:.1}x"
        );
    }

    let json = format!(
        "{{\n  \"workload\": \"mmt(N={n},BJ={bj},BK={bk})\",\n  \"scale\": \"{}\",\n  \"cache\": \"32KB/32B/2-way\",\n  \"mode\": \"exact\",\n  \"points\": {},\n  \"cold_ms\": {:.3},\n  \"hot_ms\": {:.3},\n  \"hot_queries\": {HOT_QUERIES},\n  \"hot_p50_us\": {p50_us:.1},\n  \"hot_p99_us\": {p99_us:.1},\n  \"speedup\": {speedup:.1},\n  \"threads\": {},\n  \"hw_threads\": {},\n  \"strategy\": \"set-skip\",\n  \"fingerprint\": \"{}\"\n}}\n",
        scale.label(),
        cold.points,
        cold_t.as_secs_f64() * 1e3,
        hot_t.as_secs_f64() * 1e3,
        threads.count(),
        cme_bench::hw_threads(),
        cold.fingerprint,
    );
    std::fs::write(&out, &json).expect("write BENCH_serve.json");
    eprintln!("speedup {speedup:.1}x -> {out}");
    print!("{json}");
}
