//! Regenerates Table 7: relative miss-ratio errors of the probabilistic
//! baseline (Δ_P) vs `EstimateMisses` (Δ_E) on the MMT kernel across
//! sixteen `(N, BJ, BK, C_s, L_s, k)` configurations.
//!
//! ```text
//! cargo run -p cme-bench --bin table7 --release [-- --scale small|medium|paper] [--threads n]
//! ```
//!
//! `C_s` is in K-elements and `L_s` in elements of 8 bytes, following §2's
//! element-based units (Fraguela et al. use K-words). Expected shape:
//! Δ_E ≪ Δ_P on (nearly) every row; the largest relative errors cluster on
//! the large-cache rows where the absolute number of misses is small.

use cme_analysis::{EstimateMisses, SamplingOptions};
use cme_baselines::probabilistic_estimate;
use cme_bench::{timed, Scale, Table};
use cme_cache::{CacheConfig, Simulator};

/// The sixteen rows of Table 7: (N, BJ, BK, C_s, L_s, k).
const ROWS: &[(i64, i64, i64, u64, u64, u32)] = &[
    (200, 100, 100, 16, 8, 2),
    (200, 100, 100, 256, 16, 2),
    (200, 200, 100, 32, 8, 1),
    (200, 200, 100, 128, 8, 2),
    (200, 200, 100, 128, 32, 2),
    (200, 50, 200, 16, 4, 1),
    (200, 100, 200, 32, 8, 2),
    (200, 100, 200, 64, 16, 1),
    (400, 100, 100, 16, 8, 2),
    (400, 100, 100, 256, 16, 2),
    (400, 200, 100, 32, 8, 1),
    (400, 200, 100, 128, 8, 2),
    (400, 200, 100, 128, 32, 2),
    (400, 50, 200, 16, 4, 1),
    (400, 100, 200, 32, 8, 2),
    (400, 100, 200, 64, 16, 1),
];

fn main() {
    let scale = Scale::from_args();
    let sampling = SamplingOptions {
        threads: cme_bench::threads_from_args(),
        ..SamplingOptions::paper_default()
    };
    // Geometric down-scaling preserves the working-set/cache ratios.
    let (ndiv, cdiv) = match scale {
        Scale::Small => (8, 64),
        Scale::Medium => (4, 16),
        Scale::Paper => (1, 1),
    };

    println!(
        "Table 7: probabilistic baseline (dP) vs EstimateMisses (dE) on MMT, relative errors in % ({} scale)\n",
        scale.label()
    );
    let mut t = Table::new(&[
        "N",
        "BJ",
        "BK",
        "Cs(Kelem)",
        "Ls(elem)",
        "k",
        "Sim %",
        "dP %",
        "dE %",
        "t(s)",
    ]);
    let mut wins = 0u32;
    let mut rows = 0u32;
    for &(n0, bj0, bk0, cs0, ls, k) in ROWS {
        let (n, bj, bk) = (n0 / ndiv, bj0 / ndiv, bk0 / ndiv);
        let cs_elems = cs0 * 1024 / cdiv;
        let cfg = match CacheConfig::new(cs_elems * 8, ls * 8, k) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("skipping row: {e}");
                continue;
            }
        };
        let program = cme_workloads::mmt(n, bj, bk);
        let ((sim, prob, est), dt) = timed(|| {
            let sim = Simulator::new(cfg).run(&program).miss_ratio();
            let prob = probabilistic_estimate(&program, cfg).miss_ratio();
            let est = EstimateMisses::new(&program, cfg, sampling.clone())
                .run()
                .miss_ratio();
            (sim, prob, est)
        });
        let rel = |x: f64| {
            if sim.abs() < 1e-12 {
                if x.abs() < 1e-12 {
                    0.0
                } else {
                    100.0
                }
            } else {
                100.0 * (x - sim).abs() / sim
            }
        };
        let (dp, de) = (rel(prob), rel(est));
        rows += 1;
        if de <= dp + 1e-9 {
            wins += 1;
        }
        t.row(vec![
            n.to_string(),
            bj.to_string(),
            bk.to_string(),
            (cs_elems / 1024).to_string(),
            ls.to_string(),
            k.to_string(),
            format!("{:.2}", 100.0 * sim),
            format!("{dp:.2}"),
            format!("{de:.2}"),
            cme_bench::secs(dt),
        ]);
    }
    t.print();
    println!(
        "\nEstimateMisses at least as accurate on {wins}/{rows} rows. \
         Paper: dE < dP everywhere (dP up to 44.7%, dE up to 16%)."
    );
}
