//! Timing harness for the parallel point-classification engine: runs
//! `FindMisses` on the MMT kernel serially and with the full worker pool,
//! verifies the two reports agree point-for-point, and writes the numbers
//! to `BENCH_parallel.json`.
//!
//! ```text
//! cargo run -p cme-bench --bin bench_parallel --release -- [--n 100] [--bj 100] [--bk 50] [--out BENCH_parallel.json]
//! ```
//!
//! Defaults are the paper's MMT size (N=BJ=100, BK=50) on the paper's
//! 32KB/32B/2-way cache. The speedup is honest wall-clock: on a single-CPU
//! host it will sit near 1.0 — the engine adds parallelism, not magic.

use cme_analysis::{FindMisses, Threads};
use cme_bench::timed;
use cme_cache::CacheConfig;
use cme_reuse::ReuseAnalysis;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let n: i64 = get("--n").map_or(100, |v| v.parse().expect("--n"));
    let bj: i64 = get("--bj").map_or(n, |v| v.parse().expect("--bj"));
    let bk: i64 = get("--bk").map_or((n / 2).max(1), |v| v.parse().expect("--bk"));
    let out = get("--out").unwrap_or_else(|| "BENCH_parallel.json".to_string());

    let cfg = CacheConfig::new(32 * 1024, 32, 2).expect("valid geometry");
    let program = cme_workloads::mmt(n, bj, bk);
    let max_threads = Threads::Auto.count();
    eprintln!(
        "MMT (N={n}, BJ={bj}, BK={bk}): {} accesses, cache {cfg}, {max_threads} hardware threads",
        program.total_accesses()
    );

    // Reuse vectors are shared; only classification is being timed.
    let reuse = ReuseAnalysis::analyze(&program, cfg.line_bytes());

    let (serial, serial_t) = timed(|| {
        FindMisses::with_reuse(&program, cfg, reuse.clone())
            .threads(Threads::Fixed(1))
            .run()
    });
    eprintln!("serial   ({} thread):  {:?}", 1, serial_t);
    let (parallel, parallel_t) = timed(|| {
        FindMisses::with_reuse(&program, cfg, reuse.clone())
            .threads(Threads::Auto)
            .run()
    });
    eprintln!("parallel ({max_threads} threads): {parallel_t:?}");

    // The deterministic-reduction guarantee, checked on every run.
    assert_eq!(
        serial.references(),
        parallel.references(),
        "serial and parallel reports diverged"
    );

    let speedup = serial_t.as_secs_f64() / parallel_t.as_secs_f64().max(1e-9);
    // On a single-hardware-thread host "parallel vs serial" measures only
    // pool overhead; a near-1.0 ratio there is noise, not a speedup, so
    // record null plus a caveat rather than a misleading number.
    let hw = cme_bench::hw_threads();
    let speedup_field = if hw == 1 {
        "\"speedup\": null,\n  \"caveat\": \"host has 1 hardware thread; serial-vs-parallel wall ratio is not a parallel speedup\""
            .to_string()
    } else {
        format!("\"speedup\": {speedup:.2}")
    };
    let json = format!(
        "{{\n  \"workload\": \"mmt(N={n},BJ={bj},BK={bk})\",\n  \"points\": {},\n  \"serial_ms\": {:.1},\n  \"parallel_ms\": {:.1},\n  \"threads\": {max_threads},\n  \"hw_threads\": {hw},\n  \"strategy\": \"set-skip\",\n  {speedup_field}\n}}\n",
        serial.total_accesses(),
        serial_t.as_secs_f64() * 1e3,
        parallel_t.as_secs_f64() * 1e3,
    );
    std::fs::write(&out, &json).expect("write BENCH_parallel.json");
    eprintln!("speedup {speedup:.2}x -> {out}");
    print!("{json}");
}
