//! Timing harness for the set-conscious interference walk: runs
//! `FindMisses` under both walk strategies (legacy full scan vs the
//! congruence skip-walk with contention-bound early exit), serially and
//! with the full worker pool, verifies all reports agree point-for-point,
//! and writes the numbers to `BENCH_classify.json`.
//!
//! ```text
//! cargo run -p cme-bench --bin bench_classify --release -- \
//!     [--scale small|medium|paper] [--threads N] [--skip-legacy] [--out BENCH_classify.json]
//! ```
//!
//! `--scale paper` uses the paper's problem sizes (MMT N=BJ=100, BK=50,
//! Hydro 100×100, MGRID 100); the default `small` is a CI smoke size.
//! `--skip-legacy` omits the legacy-scan timing (it dominates wall clock
//! at paper scale) — the reported speedup then compares against a prior
//! recorded baseline instead of a fresh one.

use cme_analysis::{FindMisses, Report, Threads, WalkStrategy};
use cme_bench::{timed, Scale, Table};
use cme_cache::CacheConfig;
use cme_ir::Program;
use cme_reuse::ReuseAnalysis;
use std::time::Duration;

struct Row {
    workload: String,
    points: u64,
    legacy_serial: Option<Duration>,
    skip_serial: Duration,
    skip_parallel: Duration,
}

fn run(
    program: &Program,
    reuse: &ReuseAnalysis,
    cfg: CacheConfig,
    walk: WalkStrategy,
    threads: Threads,
) -> (Report, Duration) {
    timed(|| {
        FindMisses::with_reuse(program, cfg, reuse.clone())
            .strategy(walk)
            .threads(threads)
            .run()
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let scale = Scale::from_args();
    let skip_legacy = args.iter().any(|a| a == "--skip-legacy");
    let threads = cme_bench::threads_from_args();
    let out = get("--out").unwrap_or_else(|| "BENCH_classify.json".to_string());

    let workloads: Vec<(String, Program)> = match scale {
        Scale::Small => vec![
            ("mmt(N=16,BJ=16,BK=8)".into(), cme_workloads::mmt(16, 16, 8)),
            ("hydro(24x24)".into(), cme_workloads::hydro(24, 24)),
            ("mgrid(12)".into(), cme_workloads::mgrid(12)),
        ],
        Scale::Medium => vec![
            (
                "mmt(N=40,BJ=40,BK=20)".into(),
                cme_workloads::mmt(40, 40, 20),
            ),
            ("hydro(60x60)".into(), cme_workloads::hydro(60, 60)),
            ("mgrid(40)".into(), cme_workloads::mgrid(40)),
        ],
        Scale::Paper => vec![
            (
                "mmt(N=100,BJ=100,BK=50)".into(),
                cme_workloads::mmt(100, 100, 50),
            ),
            ("hydro(100x100)".into(), cme_workloads::hydro(100, 100)),
            ("mgrid(100)".into(), cme_workloads::mgrid(100)),
        ],
    };

    let cfg = CacheConfig::new(32 * 1024, 32, 2).expect("valid geometry");
    let nthreads = threads.count();
    eprintln!(
        "bench_classify: scale {}, cache {cfg}, {nthreads} worker threads",
        scale.label()
    );

    let mut rows: Vec<Row> = Vec::new();
    for (name, program) in &workloads {
        // Reuse vectors are shared; only classification is being timed.
        let reuse = ReuseAnalysis::analyze(program, cfg.line_bytes());

        let (skip_s, skip_s_t) = run(
            program,
            &reuse,
            cfg,
            WalkStrategy::SetSkip,
            Threads::Fixed(1),
        );
        eprintln!("{name}: set-skip serial {skip_s_t:?}");
        let (skip_p, skip_p_t) = run(program, &reuse, cfg, WalkStrategy::SetSkip, threads);
        eprintln!("{name}: set-skip {nthreads}-thread {skip_p_t:?}");
        assert_eq!(
            skip_s.references(),
            skip_p.references(),
            "{name}: serial and parallel skip-walk reports diverged"
        );

        let legacy_t = if skip_legacy {
            None
        } else {
            let (legacy, t) = run(
                program,
                &reuse,
                cfg,
                WalkStrategy::LegacyScan,
                Threads::Fixed(1),
            );
            eprintln!("{name}: legacy serial {t:?}");
            assert_eq!(
                skip_s.references(),
                legacy.references(),
                "{name}: skip-walk and legacy-scan reports diverged"
            );
            Some(t)
        };

        rows.push(Row {
            workload: name.clone(),
            points: skip_s.total_accesses(),
            legacy_serial: legacy_t,
            skip_serial: skip_s_t,
            skip_parallel: skip_p_t,
        });
    }

    let mut table = Table::new(&[
        "workload",
        "points",
        "legacy-serial (s)",
        "skip-serial (s)",
        "skip-parallel (s)",
        "speedup",
        "Mpts/s",
    ]);
    let mut json_rows = Vec::new();
    for r in &rows {
        let skip_s = r.skip_serial.as_secs_f64();
        let speedup = r.legacy_serial.map(|t| t.as_secs_f64() / skip_s.max(1e-9));
        let pps = r.points as f64 / skip_s.max(1e-9);
        table.row(vec![
            r.workload.clone(),
            r.points.to_string(),
            r.legacy_serial.map_or("-".into(), cme_bench::secs),
            cme_bench::secs(r.skip_serial),
            cme_bench::secs(r.skip_parallel),
            speedup.map_or("-".into(), |s| format!("{s:.2}x")),
            format!("{:.2}", pps / 1e6),
        ]);
        json_rows.push(format!(
            "    {{\"workload\": \"{}\", \"points\": {}, \"legacy_serial_ms\": {}, \
             \"skip_serial_ms\": {:.1}, \"skip_parallel_ms\": {:.1}, \
             \"points_per_sec\": {:.0}{}}}",
            r.workload,
            r.points,
            r.legacy_serial
                .map_or("null".into(), |t| format!("{:.1}", t.as_secs_f64() * 1e3)),
            r.skip_serial.as_secs_f64() * 1e3,
            r.skip_parallel.as_secs_f64() * 1e3,
            pps,
            speedup.map_or(String::new(), |s| format!(", \"speedup\": {s:.2}")),
        ));
    }
    table.print();

    let json = format!(
        "{{\n  \"scale\": \"{}\",\n  \"cache\": \"32KB/32B/2-way\",\n  \"threads\": {nthreads},\n  \"hw_threads\": {},\n  \"strategy\": \"set-skip\",\n  \"rows\": [\n{}\n  ]\n}}\n",
        scale.label(),
        cme_bench::hw_threads(),
        json_rows.join(",\n")
    );
    std::fs::write(&out, &json).expect("write BENCH_classify.json");
    eprintln!("-> {out}");
}
