//! Integration tests for abstract inlining, including the paper's Fig. 5
//! worked example and end-to-end equivalence with hand-inlined programs.

use cme_inline::{census, ActualClass, InlineError, Inliner};
use cme_ir::{
    normalize, Actual, DimSize, LinExpr, NormalizeOptions, SNode, SRef, SourceProgram, Storage,
    Subroutine, VarDecl,
};

fn ivar(n: &str) -> LinExpr {
    LinExpr::var(n)
}

/// The Figure 5 program: MAIN calls f(X, A, B, B(I1,I2)) and
/// g(A(I1,I2), A(1,I2), B) inside a 2-deep nest.
fn figure5() -> SourceProgram {
    let (i1, i2) = (ivar("I1"), ivar("I2"));
    let mut main = Subroutine::new("MAIN");
    main.decls = vec![
        VarDecl::scalar("X", 8),
        VarDecl::array("A", &[10, 10], 8),
        VarDecl::array("B", &[20, 20], 8),
    ];
    main.body = vec![SNode::loop_(
        "I1",
        1,
        8,
        vec![SNode::loop_(
            "I2",
            1,
            8,
            vec![
                SNode::assign(SRef::new("A", vec![i1.clone(), i2.clone()]), vec![]),
                SNode::call(
                    "f",
                    vec![
                        Actual::var("X"),
                        Actual::var("A"),
                        Actual::var("B"),
                        Actual::element("B", vec![i1.clone(), i2.clone()]),
                    ],
                ),
                SNode::call(
                    "g",
                    vec![
                        Actual::element("A", vec![i1.clone(), i2.clone()]),
                        Actual::element("A", vec![LinExpr::constant(1), i2.clone()]),
                        Actual::var("B"),
                    ],
                ),
            ],
        )],
    )];

    let (i3, i4) = (ivar("I3"), ivar("I4"));
    let mut f = Subroutine::new("f");
    f.formals = vec!["Y".into(), "C".into(), "D".into(), "S".into()];
    f.decls = vec![
        VarDecl::scalar("Y", 8).formal(),
        VarDecl::array("C", &[10, 10], 8).formal(),
        VarDecl::array("D", &[400], 8).formal(),
        VarDecl::array("S", &[10, 10, 1], 8)
            .formal()
            .assumed_last_dim(),
    ];
    f.body = vec![SNode::loop_(
        "I3",
        1,
        4,
        vec![SNode::loop_(
            "I4",
            2,
            4,
            vec![
                SNode::assign(
                    SRef::new("C", vec![i3.clone(), i4.offset(-1)]),
                    vec![
                        SRef::scalar("Y"),
                        SRef::new("D", vec![i3.offset(-1).add(&i4.offset(-1).scale(20))]),
                    ],
                ),
                SNode::assign(
                    SRef::new("S", vec![i3.clone(), i4.clone(), LinExpr::constant(2)]),
                    vec![],
                ),
            ],
        )],
    )];

    let mut g = Subroutine::new("g");
    g.formals = vec!["E".into(), "F".into(), "T".into()];
    g.decls = vec![
        VarDecl::array("E", &[10, 10], 8).formal(),
        VarDecl::array("F", &[10], 8).formal(),
        VarDecl::array("T", &[100, 4], 8).formal(),
    ];
    g.body = vec![SNode::loop_(
        "I3",
        1,
        4,
        vec![SNode::loop_(
            "I4",
            1,
            4,
            vec![SNode::assign(
                SRef::new("E", vec![i3.clone(), i4.clone()]),
                vec![
                    SRef::new("F", vec![i4.clone()]),
                    SRef::new("T", vec![i3.clone(), i4.clone()]),
                ],
            )],
        )],
    )];

    SourceProgram {
        name: "fig5".into(),
        subroutines: vec![main, f, g],
        entry: "MAIN".into(),
    }
}

#[test]
fn figure5_census() {
    let c = census(&figure5());
    assert_eq!(c.calls, 2);
    assert_eq!(c.analysable_calls, 2);
    // f: X→Y (P), A→C (P), B→D (P, 1-D formal), B(I1,I2)→S (R)
    // g: A(I1,I2)→E (P), A(1,I2)→F (P, 1-D formal), B→T (R)
    assert_eq!(c.propagateable, 5);
    assert_eq!(c.renameable, 2);
    assert_eq!(c.non_analysable, 0);
}

#[test]
fn figure5_inlines_to_call_free_program() {
    let inlined = Inliner::new().inline(&figure5()).unwrap();
    let stats = inlined.stats();
    assert_eq!(stats.calls, 0);
    assert_eq!(stats.subroutines, 1);
    // References: MAIN's A write + f's (Y, D, C write, S write) + g's
    // (F, T, E write) = 8 memory references per iteration, but Y→X is a
    // scalar (register-allocated at normalisation, still present in the
    // source form).
    assert_eq!(stats.references, 8);

    // All views must share the base address of their root after
    // normalisation.
    let p = normalize(&inlined, &NormalizeOptions::default()).unwrap();
    let arrays = p.arrays();
    let find = |n: &str| arrays.iter().position(|a| a.name == n).unwrap();
    let b = find("B");
    let b_aliases: Vec<usize> = (0..arrays.len())
        .filter(|&i| arrays[i].storage == Storage::AliasOf(b))
        .collect();
    // D's 1-D view (B1: 400), S's view (10×10×*) and T's view (B2: 100×4).
    assert_eq!(b_aliases.len(), 3, "{arrays:?}");
    for id in b_aliases {
        assert_eq!(p.base_address(id), p.base_address(b), "@B = @B1 = @B2");
    }
    // F's 1-D view of A also shares A's base.
    let a = find("A");
    let a_aliases: Vec<usize> = (0..arrays.len())
        .filter(|&i| arrays[i].storage == Storage::AliasOf(a))
        .collect();
    assert_eq!(a_aliases.len(), 1, "{arrays:?}");
    assert_eq!(p.base_address(a_aliases[0]), p.base_address(a));
}

#[test]
fn figure5_propagated_subscripts_compose() {
    // g's E(I3,I4) with actual A(I1,I2) must become A(I1+I3−1, I2+I4−1).
    let inlined = Inliner::new().inline(&figure5()).unwrap();
    let p = normalize(&inlined, &NormalizeOptions::default()).unwrap();
    // Find a write reference to A whose display mentions two renamed loop
    // vars; verify via addresses instead of display: at I1=2,I2=3,I3=1,I4=1
    // the write must hit A(2,3).
    // The normalised program is 4-deep: (I1, I2, I3~i, I4~i).
    let a_id = p
        .arrays()
        .iter()
        .position(|a| a.name == "A")
        .expect("A exists");
    let writes_to_a: Vec<usize> = (0..p.references().len())
        .filter(|&r| {
            p.reference(r).array == a_id && p.reference(r).kind == cme_ir::AccessKind::Write
        })
        .collect();
    // MAIN's write, f's C write (propagated to A), g's E write (propagated
    // with offsets).
    assert_eq!(writes_to_a.len(), 3);
    // The E write: subscripts (I1+I3−1, I2+I4−1); at point (2,3,1,1) that is
    // A(2,3) → elem (2−1) + (3−1)*10 = 21.
    let e_write = *writes_to_a
        .iter()
        .find(|&&r| {
            let subs = &p.reference(r).subs;
            subs[0].coeffs().iter().filter(|&&c| c != 0).count() == 2
        })
        .expect("composed write exists");
    assert_eq!(p.elem_index(e_write, &[2, 3, 1, 1]), 21);
}

#[test]
fn hand_inlined_equivalence() {
    // A two-subroutine program and its hand-inlined equivalent must produce
    // identical simulated miss counts (identical traces module layout).
    let n = 24i64;
    let (i, j) = (ivar("I"), ivar("J"));

    // Version 1: MAIN initialises V, then CALL smooth(V, W) twice.
    let mut main = Subroutine::new("MAIN");
    main.decls = vec![VarDecl::array("V", &[n], 8), VarDecl::array("W", &[n], 8)];
    main.body = vec![
        SNode::loop_(
            "I",
            1,
            n,
            vec![SNode::assign(SRef::new("V", vec![i.clone()]), vec![])],
        ),
        SNode::call("smooth", vec![Actual::var("V"), Actual::var("W")]),
        SNode::call("smooth", vec![Actual::var("W"), Actual::var("V")]),
    ];
    let mut smooth = Subroutine::new("smooth");
    smooth.formals = vec!["SRC".into(), "DST".into()];
    smooth.decls = vec![
        VarDecl::array("SRC", &[n], 8).formal(),
        VarDecl::array("DST", &[n], 8).formal(),
    ];
    smooth.body = vec![SNode::loop_(
        "J",
        2,
        n - 1,
        vec![SNode::assign(
            SRef::new("DST", vec![j.clone()]),
            vec![
                SRef::new("SRC", vec![j.offset(-1)]),
                SRef::new("SRC", vec![j.offset(1)]),
            ],
        )],
    )];
    let with_calls = SourceProgram {
        name: "calls".into(),
        subroutines: vec![main, smooth],
        entry: "MAIN".into(),
    };

    // Version 2: hand-inlined.
    let mut flat = Subroutine::new("MAIN");
    flat.decls = vec![VarDecl::array("V", &[n], 8), VarDecl::array("W", &[n], 8)];
    let mk_smooth = |src: &str, dst: &str, var: &str| {
        let v = ivar(var);
        SNode::loop_(
            var,
            2,
            n - 1,
            vec![SNode::assign(
                SRef::new(dst, vec![v.clone()]),
                vec![
                    SRef::new(src, vec![v.offset(-1)]),
                    SRef::new(src, vec![v.offset(1)]),
                ],
            )],
        )
    };
    flat.body = vec![
        SNode::loop_(
            "I",
            1,
            n,
            vec![SNode::assign(SRef::new("V", vec![i.clone()]), vec![])],
        ),
        mk_smooth("V", "W", "J1"),
        mk_smooth("W", "V", "J2"),
    ];
    let hand = SourceProgram::single("hand", flat);

    let inlined = Inliner::new().inline(&with_calls).unwrap();
    let p1 = normalize(&inlined, &NormalizeOptions::default()).unwrap();
    let p2 = normalize(&hand, &NormalizeOptions::default()).unwrap();
    let cfg = cme_cache::CacheConfig::new(256, 32, 2).unwrap();
    let s1 = cme_cache::Simulator::new(cfg).run(&p1);
    let s2 = cme_cache::Simulator::new(cfg).run(&p2);
    assert_eq!(s1.total_accesses(), s2.total_accesses());
    assert_eq!(s1.total_misses(), s2.total_misses());
}

#[test]
fn nested_calls_inline_transitively() {
    let n = 16i64;
    let i = ivar("I");
    let mut main = Subroutine::new("MAIN");
    main.decls = vec![VarDecl::array("A", &[n], 8)];
    main.body = vec![SNode::call("outer", vec![Actual::var("A")])];
    let mut outer = Subroutine::new("outer");
    outer.formals = vec!["P".into()];
    outer.decls = vec![VarDecl::array("P", &[n], 8).formal()];
    outer.body = vec![SNode::call("inner", vec![Actual::var("P")])];
    let mut inner = Subroutine::new("inner");
    inner.formals = vec!["Q".into()];
    inner.decls = vec![VarDecl::array("Q", &[n], 8).formal()];
    inner.body = vec![SNode::loop_(
        "I",
        1,
        n,
        vec![SNode::assign(SRef::new("Q", vec![i.clone()]), vec![])],
    )];
    let src = SourceProgram {
        name: "nest".into(),
        subroutines: vec![main, outer, inner],
        entry: "MAIN".into(),
    };
    let inlined = Inliner::new().inline(&src).unwrap();
    assert_eq!(inlined.stats().calls, 0);
    let p = normalize(&inlined, &NormalizeOptions::default()).unwrap();
    assert_eq!(p.references().len(), 1);
    // The write lands on A directly (propagated through two levels).
    assert_eq!(p.arrays()[p.reference(0).array].name, "A");
}

#[test]
fn recursion_is_rejected() {
    let mut main = Subroutine::new("MAIN");
    main.body = vec![SNode::call("f", vec![])];
    let mut f = Subroutine::new("f");
    f.body = vec![SNode::call("f", vec![])];
    let src = SourceProgram {
        name: "rec".into(),
        subroutines: vec![main, f],
        entry: "MAIN".into(),
    };
    assert!(matches!(
        Inliner::new().inline(&src),
        Err(InlineError::Recursion { .. })
    ));
}

#[test]
fn locals_are_shared_across_call_sites() {
    // f has a local buffer; two calls must use the same storage.
    let n = 8i64;
    let i = ivar("I");
    let mut main = Subroutine::new("MAIN");
    main.decls = vec![VarDecl::array("A", &[n], 8)];
    main.body = vec![
        SNode::call("f", vec![Actual::var("A")]),
        SNode::call("f", vec![Actual::var("A")]),
    ];
    let mut f = Subroutine::new("f");
    f.formals = vec!["P".into()];
    f.decls = vec![
        VarDecl::array("P", &[n], 8).formal(),
        VarDecl::array("BUF", &[n], 8),
    ];
    f.body = vec![SNode::loop_(
        "I",
        1,
        n,
        vec![SNode::assign(
            SRef::new("BUF", vec![i.clone()]),
            vec![SRef::new("P", vec![i.clone()])],
        )],
    )];
    let src = SourceProgram {
        name: "locals".into(),
        subroutines: vec![main, f],
        entry: "MAIN".into(),
    };
    let inlined = Inliner::new().inline(&src).unwrap();
    let bufs: Vec<&VarDecl> = inlined.subroutines[0]
        .decls
        .iter()
        .filter(|d| d.name.contains("BUF"))
        .collect();
    assert_eq!(bufs.len(), 1, "one shared storage for f.BUF");
    assert_eq!(bufs[0].name, "f.BUF");
}

#[test]
fn stack_model_emits_frame_accesses() {
    let n = 8i64;
    let i = ivar("I");
    let mut main = Subroutine::new("MAIN");
    main.decls = vec![VarDecl::array("A", &[n], 8)];
    main.body = vec![SNode::call("f", vec![Actual::var("A")])];
    let mut f = Subroutine::new("f");
    f.formals = vec!["P".into()];
    f.decls = vec![VarDecl::array("P", &[n], 8).formal()];
    f.body = vec![SNode::loop_(
        "I",
        1,
        n,
        vec![SNode::assign(SRef::new("P", vec![i.clone()]), vec![])],
    )];
    let src = SourceProgram {
        name: "stack".into(),
        subroutines: vec![main, f],
        entry: "MAIN".into(),
    };
    let inlined = Inliner::with_stack_model().inline(&src).unwrap();
    let stack_decl = inlined.subroutines[0]
        .decls
        .iter()
        .find(|d| d.name == "STACK")
        .expect("stack declared");
    assert_eq!(stack_decl.dims, vec![DimSize::Fixed(2)]); // ret addr + 1 arg
                                                          // Frame accesses present: 2 writes + 1 ptr read + 1 ret read + loop body.
    let stats = inlined.stats();
    assert_eq!(stats.references, 2 + 1 + 1 + 1);
    // Without the stack model they are absent.
    let plain = Inliner::new().inline(&src).unwrap();
    assert_eq!(plain.stats().references, 1);
}

#[test]
fn non_analysable_actual_is_rejected() {
    // Element-size mismatch makes the call non-analysable.
    let mut main = Subroutine::new("MAIN");
    main.decls = vec![VarDecl::array("A", &[8, 8], 4)];
    main.body = vec![SNode::call("f", vec![Actual::var("A")])];
    let mut f = Subroutine::new("f");
    f.formals = vec!["P".into()];
    f.decls = vec![VarDecl::array("P", &[8, 8], 8).formal()];
    f.body = vec![SNode::loop_(
        "I",
        1,
        8,
        vec![SNode::assign(
            SRef::new("P", vec![ivar("I"), LinExpr::constant(1)]),
            vec![],
        )],
    )];
    let src = SourceProgram {
        name: "bad".into(),
        subroutines: vec![main, f],
        entry: "MAIN".into(),
    };
    assert_eq!(
        census(&src).non_analysable,
        1,
        "census counts the N-able actual"
    );
    // The callee references the formal, so the call cannot be inlined …
    assert!(matches!(
        Inliner::new().inline(&src),
        Err(InlineError::NonAnalysable { .. })
    ));
    // … but a callee that never touches the formal inlines fine.
    let mut dead = src.clone();
    dead.subroutines[1].body.clear();
    let inlined = Inliner::new().inline(&dead).unwrap();
    assert_eq!(inlined.stats().calls, 0);
}

#[test]
fn classification_exports() {
    // classify_actual is part of the public API.
    let mut caller = Subroutine::new("c");
    caller.decls = vec![VarDecl::scalar("X", 8)];
    let fp = VarDecl::scalar("Y", 8).formal();
    assert_eq!(
        cme_inline::classify_actual(&caller, &Actual::var("X"), &fp).unwrap(),
        ActualClass::Propagateable
    );
}

#[test]
fn stack_model_only_adds_stack_accesses() {
    // Filtering the STACK accesses out of the stack-modelled trace must
    // yield exactly the plain inlined trace (Fig. 4 is additive).
    let n = 12i64;
    let (i, j) = (ivar("I"), ivar("J"));
    let mut main = Subroutine::new("MAIN");
    main.decls = vec![VarDecl::array("G", &[n, n], 8)];
    main.body = vec![
        SNode::call("STEP", vec![Actual::var("G")]),
        SNode::call("STEP", vec![Actual::var("G")]),
    ];
    let mut step = Subroutine::new("STEP");
    step.formals = vec!["A".into()];
    step.decls = vec![VarDecl::array("A", &[n, n], 8).formal()];
    step.body = vec![SNode::loop_(
        "J",
        2,
        n - 1,
        vec![SNode::loop_(
            "I",
            2,
            n - 1,
            vec![SNode::assign(
                SRef::new("A", vec![i.clone(), j.clone()]),
                vec![SRef::new("A", vec![i.offset(-1), j.clone()])],
            )],
        )],
    )];
    let src = SourceProgram {
        name: "stacked".into(),
        subroutines: vec![main, step],
        entry: "MAIN".into(),
    };

    let collect = |program: &cme_ir::Program, skip_stack: bool| -> Vec<(String, i64)> {
        let stack_id = program.arrays().iter().position(|a| a.name == "STACK");
        let mut out = Vec::new();
        cme_ir::walk::for_each_access(program, |a| {
            let arr = program.reference(a.r).array;
            if !(skip_stack && Some(arr) == stack_id) {
                // Record the array name + offset from its base so the two
                // layouts compare (STACK shifts absolute addresses).
                out.push((
                    program.arrays()[arr].name.clone(),
                    a.addr - program.base_address(arr),
                ));
            }
            std::ops::ControlFlow::Continue(())
        });
        out
    };

    let plain = normalize(
        &Inliner::new().inline(&src).unwrap(),
        &NormalizeOptions::default(),
    )
    .unwrap();
    let stacked = normalize(
        &Inliner::with_stack_model().inline(&src).unwrap(),
        &NormalizeOptions::default(),
    )
    .unwrap();
    assert_eq!(collect(&stacked, true), collect(&plain, false));
    // And the stack accesses themselves exist.
    assert!(collect(&stacked, false).len() > collect(&plain, false).len());
}
