//! Abstract inlining of call statements (§3.6 of the paper).
//!
//! FORTRAN passes all arguments by reference; to analyse a program with
//! `CALL` statements exactly, every analysable call is *abstractly
//! inlined*: the callee's references are rewritten into the caller without
//! generating compilable code. This crate provides:
//!
//! * [`classify`] — the propagateable / renameable / non-analysable
//!   classification of actual parameters and the Table 2 census;
//! * [`Inliner`] — the inlining transformation itself, including parameter
//!   propagation with subscript composition, renamed base-sharing views
//!   (`@AP = @AP'`), hoisting of statically-allocated callee locals, and an
//!   optional model of the run-time-stack accesses of Fig. 4.
//!
//! The output is a call-free, single-subroutine [`cme_ir::SourceProgram`],
//! ready for normalisation and cache analysis.

pub mod classify;
pub mod error;
pub mod inliner;

pub use classify::{census, classify_actual, ActualClass, Census};
pub use error::InlineError;
pub use inliner::{InlineOptions, Inliner};
