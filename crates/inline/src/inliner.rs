//! Abstract inlining of call statements (§3.6, Figs. 4–5 of the paper).
//!
//! Every analysable `CALL` is replaced by the callee's body with:
//!
//! * **propagated** actuals — callee references to a matching-shape formal
//!   are rewritten against the actual itself (with element offsets folded
//!   into the subscripts), so reuse between caller and callee is preserved;
//! * **renamed** actuals — a fresh *view* declaration with the formal's
//!   shape and the actual's base address (`@AP = @AP'`) carries the
//!   callee's references, preserving reuse within the callee (Fig. 5's
//!   `B1`, `B2`);
//! * hoisted callee **locals** — FORTRAN locals are statically allocated,
//!   so all call sites share one storage (`f.WB`);
//! * **COMMON blocks** — every subroutine's members of `COMMON /B/` are
//!   renamed onto one program-level storage (`B.X`), laid out contiguously
//!   in member order, so parameterless calls communicating through COMMON
//!   (the paper's Swim) analyse exactly;
//! * renamed callee **loop variables** — fresh names per call site;
//! * optional **run-time stack** accesses (Fig. 4) — frame writes/reads to
//!   a distinguished `STACK` array at compile-time-known offsets (possible
//!   because recursion is excluded).
//!
//! No code is generated or compiled; the output is another
//! [`SourceProgram`] (single subroutine, call-free) carrying exactly the
//! information the analysis needs — hence *abstract* inlining.

use crate::error::InlineError;
use cme_ir::{
    Actual, DimSize, LinExpr, SAssign, SCall, SIf, SLoop, SNode, SRef, SourceProgram, Subroutine,
    VarDecl, VarKind,
};
use std::collections::HashMap;

/// Options for [`Inliner`].
#[derive(Debug, Clone, Default)]
pub struct InlineOptions {
    /// Model the call-frame stack accesses of Fig. 4. Off by default: the
    /// paper notes the impact is insignificant for large programs.
    pub model_stack: bool,
}

/// Abstract inliner: turns a multi-subroutine program into an equivalent
/// single-subroutine, call-free program.
///
/// # Examples
///
/// ```
/// use cme_inline::Inliner;
/// use cme_ir::*;
///
/// // MAIN calls f(A), f copies its formal C into itself shifted by one.
/// let mut main = Subroutine::new("MAIN");
/// main.decls = vec![VarDecl::array("A", &[64], 8)];
/// main.body = vec![SNode::call("f", vec![Actual::var("A")])];
/// let mut f = Subroutine::new("f");
/// f.formals = vec!["C".into()];
/// f.decls = vec![VarDecl::array("C", &[64], 8).formal()];
/// let i = LinExpr::var("I");
/// f.body = vec![SNode::loop_("I", 2, 64, vec![SNode::assign(
///     SRef::new("C", vec![i.clone()]),
///     vec![SRef::new("C", vec![i.offset(-1)])],
/// )])];
/// let program = SourceProgram {
///     name: "demo".into(),
///     subroutines: vec![main, f],
///     entry: "MAIN".into(),
/// };
///
/// let inlined = Inliner::new().inline(&program)?;
/// assert_eq!(inlined.stats().calls, 0);
/// assert_eq!(inlined.stats().references, 2); // C(I), C(I-1) → A(I), A(I-1)
/// # Ok::<(), cme_inline::InlineError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Inliner {
    opts: InlineOptions,
}

/// How a callee name is rewritten in the inlined body.
#[derive(Debug, Clone)]
enum Binding {
    /// Scalar formal bound to a caller scalar.
    Scalar(String),
    /// Scalar formal bound to an array element.
    Element { array: String, subs: Vec<LinExpr> },
    /// Array formal: `FP(s₁…s_d)` ↦ `array(s₁+off₁, …, s_d+off_d)`.
    Array { array: String, offs: Vec<LinExpr> },
    /// Plain rename (hoisted locals).
    Rename(String),
}

struct Ctx<'a> {
    src: &'a SourceProgram,
    decls: Vec<VarDecl>,
    /// hoisted local name per (subroutine, local).
    hoisted: HashMap<(String, String), String>,
    /// canonical member list per hoisted COMMON block, for mismatch checks.
    commons: HashMap<String, Vec<VarDecl>>,
    /// view alias per (root array, shape, elem size).
    aliases: HashMap<(String, Vec<DimSize>, u32), String>,
    var_counter: usize,
    alias_counter: usize,
    /// Current stack pointer in elements (Fig. 4); compile-time because
    /// recursion is excluded.
    sp: i64,
    max_sp: i64,
    model_stack: bool,
    stack_name: String,
}

impl<'a> Ctx<'a> {
    fn decl(&self, name: &str) -> Option<&VarDecl> {
        self.decls.iter().find(|d| d.name == name)
    }

    /// The non-alias array a name's storage belongs to.
    fn root_of(&self, name: &str) -> String {
        let mut cur = name.to_string();
        while let Some(d) = self.decl(&cur) {
            match &d.alias_of {
                Some(t) => cur = t.clone(),
                None => break,
            }
        }
        cur
    }

    fn fresh_alias(&mut self, base: &str) -> String {
        self.alias_counter += 1;
        format!("{base}#v{}", self.alias_counter)
    }

    /// Column-major strides (in elements) of a declared shape; `None` when
    /// a non-last dimension is assumed.
    fn strides(d: &VarDecl) -> Option<Vec<i64>> {
        let mut acc = 1i64;
        let mut out = Vec::with_capacity(d.dims.len());
        for (i, dim) in d.dims.iter().enumerate() {
            out.push(acc);
            if i + 1 < d.dims.len() {
                acc *= dim.fixed()?;
            }
        }
        Some(out)
    }
}

impl Inliner {
    /// An inliner with default options (no stack modelling).
    pub fn new() -> Self {
        Inliner::default()
    }

    /// An inliner that also models the Fig. 4 run-time-stack accesses.
    pub fn with_stack_model() -> Self {
        Inliner {
            opts: InlineOptions { model_stack: true },
        }
    }

    /// Inlines every call reachable from the entry subroutine, producing a
    /// call-free single-subroutine program ready for normalisation.
    ///
    /// # Errors
    ///
    /// Returns an [`InlineError`] for unknown callees, recursion, arity
    /// mismatches or non-analysable actuals.
    pub fn inline(&self, src: &SourceProgram) -> Result<SourceProgram, InlineError> {
        let entry = src.entry_subroutine();
        let stack_name = {
            let mut name = "STACK".to_string();
            while src
                .subroutines
                .iter()
                .any(|s| s.decls.iter().any(|d| d.name == name))
            {
                name.push('_');
            }
            name
        };
        // Entry declarations minus COMMON members (those hoist to shared
        // block storage below).
        let entry_common: HashMap<&str, &str> = entry
            .commons
            .iter()
            .flat_map(|c| c.vars.iter().map(move |v| (v.as_str(), c.block.as_str())))
            .collect();
        let mut ctx = Ctx {
            src,
            decls: entry
                .decls
                .iter()
                .filter(|d| !entry_common.contains_key(d.name.as_str()))
                .map(|d| {
                    let mut d = d.clone();
                    d.kind = VarKind::Local;
                    d
                })
                .collect(),
            hoisted: HashMap::new(),
            commons: HashMap::new(),
            aliases: HashMap::new(),
            var_counter: 0,
            alias_counter: 0,
            sp: 0,
            max_sp: 0,
            model_stack: self.opts.model_stack,
            stack_name,
        };
        // Hoist the entry's COMMON members and bind its references to them.
        let mut bind: HashMap<String, Binding> = HashMap::new();
        hoist_commons(entry, &mut ctx, &mut bind)?;
        let mut path = vec![entry.name.clone()];
        let body = self.process(&entry.body, &bind, &HashMap::new(), &mut ctx, &mut path)?;
        let mut decls = ctx.decls;
        if ctx.model_stack && ctx.max_sp > 0 {
            decls.push(VarDecl::array(ctx.stack_name.clone(), &[ctx.max_sp], 8));
        }
        let sub = Subroutine {
            name: entry.name.clone(),
            decls,
            formals: Vec::new(),
            commons: Vec::new(),
            body,
        };
        Ok(SourceProgram {
            name: src.name.clone(),
            subroutines: vec![sub],
            entry: entry.name.clone(),
        })
    }

    /// Rewrites a node list under `bind` (formal/local bindings) and
    /// `vars` (loop-variable renames), expanding calls recursively.
    fn process(
        &self,
        nodes: &[SNode],
        bind: &HashMap<String, Binding>,
        vars: &HashMap<String, String>,
        ctx: &mut Ctx<'_>,
        path: &mut Vec<String>,
    ) -> Result<Vec<SNode>, InlineError> {
        let mut out = Vec::with_capacity(nodes.len());
        for n in nodes {
            match n {
                SNode::Loop(l) => {
                    out.push(SNode::Loop(SLoop {
                        var: vars.get(&l.var).cloned().unwrap_or_else(|| l.var.clone()),
                        lb: rewrite_expr(&l.lb, vars),
                        ub: rewrite_expr(&l.ub, vars),
                        step: l.step,
                        body: self.process(&l.body, bind, vars, ctx, path)?,
                    }));
                }
                SNode::If(i) => {
                    out.push(SNode::If(SIf {
                        conds: i
                            .conds
                            .iter()
                            .map(|c| cme_ir::LinRel {
                                lhs: rewrite_expr(&c.lhs, vars),
                                op: c.op,
                                rhs: rewrite_expr(&c.rhs, vars),
                            })
                            .collect(),
                        then_body: self.process(&i.then_body, bind, vars, ctx, path)?,
                        else_body: self.process(&i.else_body, bind, vars, ctx, path)?,
                    }));
                }
                SNode::Assign(a) => {
                    out.push(SNode::Assign(SAssign {
                        reads: a.reads.iter().map(|r| rewrite_ref(r, bind, vars)).collect(),
                        write: a.write.as_ref().map(|r| rewrite_ref(r, bind, vars)),
                        label: a.label.clone(),
                    }));
                }
                SNode::Call(call) => {
                    let rewritten = SCall {
                        callee: call.callee.clone(),
                        args: call
                            .args
                            .iter()
                            .map(|a| rewrite_actual(a, bind, vars))
                            .collect(),
                    };
                    out.extend(self.expand_call(&rewritten, ctx, path)?);
                }
            }
        }
        Ok(out)
    }

    /// Expands one call whose actuals are already expressed in output-
    /// program terms.
    fn expand_call(
        &self,
        call: &SCall,
        ctx: &mut Ctx<'_>,
        path: &mut Vec<String>,
    ) -> Result<Vec<SNode>, InlineError> {
        let Some(callee) = ctx.src.subroutine(&call.callee) else {
            return Err(InlineError::UnknownSubroutine {
                name: call.callee.clone(),
            });
        };
        if path.contains(&callee.name) {
            return Err(InlineError::Recursion {
                name: callee.name.clone(),
            });
        }
        if callee.formals.len() != call.args.len() {
            return Err(InlineError::ArityMismatch {
                callee: callee.name.clone(),
                supplied: call.args.len(),
                declared: callee.formals.len(),
            });
        }

        // Formal bindings. A formal the callee never references needs no
        // binding at all — its actual may even be non-analysable (see the
        // census rule in `classify`).
        let mut bind: HashMap<String, Binding> = HashMap::new();
        for (actual, fname) in call.args.iter().zip(&callee.formals) {
            let fp = callee
                .decl(fname)
                .ok_or_else(|| InlineError::UnknownSubroutine {
                    name: format!("{}::{fname}", callee.name),
                })?
                .clone();
            match self.bind_actual(actual, &fp, &callee.name, ctx) {
                Ok(b) => {
                    bind.insert(fname.clone(), b);
                }
                Err(e) => {
                    if cme_ir::ast::references_name(&callee.body, fname) {
                        return Err(e);
                    }
                }
            }
        }
        // COMMON members bind to the shared block storage.
        hoist_commons(callee, ctx, &mut bind)?;
        // Hoisted locals (shared across call sites, FORTRAN static storage).
        for d in &callee.decls {
            if d.kind == VarKind::Formal || bind.contains_key(&d.name) {
                continue;
            }
            let key = (callee.name.clone(), d.name.clone());
            let hoisted = match ctx.hoisted.get(&key) {
                Some(h) => h.clone(),
                None => {
                    let h = format!("{}.{}", callee.name, d.name);
                    let mut nd = d.clone();
                    nd.name = h.clone();
                    ctx.decls.push(nd);
                    ctx.hoisted.insert(key, h.clone());
                    h
                }
            };
            bind.insert(d.name.clone(), Binding::Rename(hoisted));
        }
        // Loop-variable renames, fresh per call site.
        let mut vars: HashMap<String, String> = HashMap::new();
        collect_loop_vars(&callee.body, &mut |v| {
            if !vars.contains_key(v) {
                ctx.var_counter += 1;
                vars.insert(v.to_string(), format!("{v}~{}", ctx.var_counter));
            }
        });

        // Stack frame (Fig. 4): return address + one pointer per argument.
        let mut out = Vec::new();
        let frame = call.args.len() as i64 + 1;
        let frame_base = ctx.sp;
        if ctx.model_stack {
            let slot = |k: i64| {
                SRef::new(
                    ctx.stack_name.clone(),
                    vec![LinExpr::constant(frame_base + k)],
                )
            };
            // Caller writes the return address and argument pointers …
            for k in 1..=frame {
                out.push(SNode::assign(slot(k), vec![]));
            }
            // … and the callee reads the argument pointers on entry.
            out.push(SNode::reads_only((2..=frame).map(slot).collect()));
            ctx.sp += frame;
            ctx.max_sp = ctx.max_sp.max(ctx.sp);
        }

        path.push(callee.name.clone());
        let body = self.process(&callee.body, &bind, &vars, ctx, path)?;
        path.pop();
        out.extend(body);

        if ctx.model_stack {
            // Return: the callee reads the return address back.
            out.push(SNode::reads_only(vec![SRef::new(
                ctx.stack_name.clone(),
                vec![LinExpr::constant(frame_base + 1)],
            )]));
            ctx.sp -= frame;
        }
        Ok(out)
    }

    /// Builds the binding for one actual/formal pair, creating view aliases
    /// as needed.
    fn bind_actual(
        &self,
        actual: &Actual,
        fp: &VarDecl,
        callee: &str,
        ctx: &mut Ctx<'_>,
    ) -> Result<Binding, InlineError> {
        let Some(ap) = ctx.decl(&actual.name).cloned() else {
            return Err(InlineError::UnknownActual {
                name: actual.name.clone(),
                caller: callee.to_string(),
            });
        };
        if ap.elem_bytes != fp.elem_bytes {
            return Err(InlineError::NonAnalysable {
                callee: callee.to_string(),
                formal: fp.name.clone(),
            });
        }
        if fp.is_scalar() {
            return Ok(if ap.is_scalar() {
                Binding::Scalar(actual.name.clone())
            } else {
                let subs = if actual.subs.is_empty() {
                    vec![LinExpr::constant(1); ap.dims.len()]
                } else {
                    actual.subs.clone()
                };
                Binding::Element {
                    array: actual.name.clone(),
                    subs,
                }
            });
        }

        // Propagation with matching shape: same rank, matching sizes in all
        // but the last dimension, and the actual's own declaration is used.
        let rank_match = ap.dims.len() == fp.dims.len()
            && ap
                .dims
                .iter()
                .zip(&fp.dims)
                .take(fp.dims.len() - 1)
                .all(|(a, b)| matches!((a.fixed(), b.fixed()), (Some(x), Some(y)) if x == y));
        if rank_match && !ap.is_scalar() {
            let offs = if actual.subs.is_empty() {
                vec![LinExpr::constant(0); fp.dims.len()]
            } else {
                actual.subs.iter().map(|s| s.offset(-1)).collect()
            };
            return Ok(Binding::Array {
                array: actual.name.clone(),
                offs,
            });
        }

        // View (Fig. 5's renaming, also used for 1-D reshapes): a fresh
        // alias with the formal's shape sharing the actual's base address;
        // the element offset of a subscripted actual folds into the first
        // subscript.
        let Some(ap_strides) = Ctx::strides(&ap) else {
            return Err(InlineError::NonAnalysable {
                callee: callee.to_string(),
                formal: fp.name.clone(),
            });
        };
        if Ctx::strides(fp).is_none() {
            return Err(InlineError::NonAnalysable {
                callee: callee.to_string(),
                formal: fp.name.clone(),
            });
        }
        let root = ctx.root_of(&actual.name);
        let key = (root.clone(), fp.dims.clone(), fp.elem_bytes);
        let alias = match ctx.aliases.get(&key) {
            Some(a) => a.clone(),
            None => {
                let name = ctx.fresh_alias(&root);
                let decl = VarDecl {
                    name: name.clone(),
                    elem_bytes: fp.elem_bytes,
                    dims: fp.dims.clone(),
                    kind: VarKind::Local,
                    alias_of: Some(root.clone()),
                };
                ctx.decls.push(decl);
                ctx.aliases.insert(key, name.clone());
                name
            }
        };
        // Linearised 0-based element offset of the actual within its array.
        let mut lin = LinExpr::constant(0);
        for (i, s) in actual.subs.iter().enumerate() {
            lin = lin.add(&s.offset(-1).scale(ap_strides[i]));
        }
        let mut offs = vec![LinExpr::constant(0); fp.dims.len()];
        offs[0] = lin;
        Ok(Binding::Array { array: alias, offs })
    }

    /// Table 2 census for a whole program (delegates to
    /// [`crate::classify::census`]).
    pub fn census(program: &SourceProgram) -> crate::classify::Census {
        crate::classify::census(program)
    }
}

/// Hoists a subroutine's `COMMON` members onto the program-level block
/// storage (`BLOCK.NAME`) and records `Rename` bindings for them. Layouts
/// must match name-for-name across subroutines.
fn hoist_commons(
    sub: &Subroutine,
    ctx: &mut Ctx<'_>,
    bind: &mut HashMap<String, Binding>,
) -> Result<(), InlineError> {
    for cb in &sub.commons {
        // Collect the member declarations in block order.
        let mut members: Vec<VarDecl> = Vec::with_capacity(cb.vars.len());
        for v in &cb.vars {
            let d = sub.decl(v).ok_or_else(|| InlineError::CommonMismatch {
                block: cb.block.clone(),
                subroutine: sub.name.clone(),
            })?;
            members.push(d.clone());
        }
        match ctx.commons.get(&cb.block) {
            Some(canon) => {
                let same = canon.len() == members.len()
                    && canon.iter().zip(&members).all(|(a, b)| {
                        a.name == b.name && a.dims == b.dims && a.elem_bytes == b.elem_bytes
                    });
                if !same {
                    return Err(InlineError::CommonMismatch {
                        block: cb.block.clone(),
                        subroutine: sub.name.clone(),
                    });
                }
            }
            None => {
                // First sight of the block: create the shared storage, in
                // member order so the block is contiguous in the layout.
                for d in &members {
                    let mut nd = d.clone();
                    nd.name = format!("{}.{}", cb.block, d.name);
                    nd.kind = VarKind::Local;
                    ctx.decls.push(nd);
                }
                ctx.commons.insert(cb.block.clone(), members.clone());
            }
        }
        for d in &members {
            bind.insert(
                d.name.clone(),
                Binding::Rename(format!("{}.{}", cb.block, d.name)),
            );
        }
    }
    Ok(())
}

fn rewrite_expr(e: &LinExpr, vars: &HashMap<String, String>) -> LinExpr {
    let mut out = e.clone();
    for (from, to) in vars {
        out = out.rename(from, to);
    }
    out
}

fn rewrite_ref(r: &SRef, bind: &HashMap<String, Binding>, vars: &HashMap<String, String>) -> SRef {
    let subs: Vec<LinExpr> = r.subs.iter().map(|s| rewrite_expr(s, vars)).collect();
    match bind.get(&r.array) {
        None => SRef::new(r.array.clone(), subs),
        Some(Binding::Scalar(n)) => SRef::scalar(n.clone()),
        Some(Binding::Element { array, subs: es }) => SRef::new(array.clone(), es.clone()),
        Some(Binding::Rename(n)) => SRef::new(n.clone(), subs),
        Some(Binding::Array { array, offs }) => SRef::new(
            array.clone(),
            subs.iter().zip(offs).map(|(s, o)| s.add(o)).collect(),
        ),
    }
}

fn rewrite_actual(
    a: &Actual,
    bind: &HashMap<String, Binding>,
    vars: &HashMap<String, String>,
) -> Actual {
    let subs: Vec<LinExpr> = a.subs.iter().map(|s| rewrite_expr(s, vars)).collect();
    match bind.get(&a.name) {
        None => Actual {
            name: a.name.clone(),
            subs,
        },
        Some(Binding::Scalar(n)) => Actual::var(n.clone()),
        Some(Binding::Element { array, subs: es }) => Actual::element(array.clone(), es.clone()),
        Some(Binding::Rename(n)) => Actual {
            name: n.clone(),
            subs,
        },
        Some(Binding::Array { array, offs }) => {
            if subs.is_empty() {
                if offs
                    .iter()
                    .all(|o| o.is_constant() && o.constant_term() == 0)
                {
                    Actual::var(array.clone())
                } else {
                    Actual::element(array.clone(), offs.iter().map(|o| o.offset(1)).collect())
                }
            } else {
                Actual::element(
                    array.clone(),
                    subs.iter().zip(offs).map(|(s, o)| s.add(o)).collect(),
                )
            }
        }
    }
}

fn collect_loop_vars(nodes: &[SNode], f: &mut impl FnMut(&str)) {
    for n in nodes {
        match n {
            SNode::Loop(l) => {
                f(&l.var);
                collect_loop_vars(&l.body, f);
            }
            SNode::If(i) => {
                collect_loop_vars(&i.then_body, f);
                collect_loop_vars(&i.else_body, f);
            }
            _ => {}
        }
    }
}
