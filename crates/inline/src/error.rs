//! Errors from abstract inlining.

use std::fmt;

/// An error during call-site classification or abstract inlining.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InlineError {
    /// A `CALL` names a subroutine that does not exist in the program.
    UnknownSubroutine {
        /// The callee name.
        name: String,
    },
    /// The static call graph has a cycle (recursion is a data-dependent
    /// construct, outside the program model).
    Recursion {
        /// The subroutine where the cycle closes.
        name: String,
    },
    /// Argument count differs from the formal parameter count.
    ArityMismatch {
        /// The callee.
        callee: String,
        /// Actuals supplied.
        supplied: usize,
        /// Formals declared.
        declared: usize,
    },
    /// An actual parameter is neither propagateable nor renameable, so the
    /// call cannot be abstractly inlined (the `N-able` column of Table 2).
    NonAnalysable {
        /// The callee.
        callee: String,
        /// The formal parameter the actual is bound to.
        formal: String,
    },
    /// A `COMMON` block is declared with different member layouts in two
    /// subroutines (supported layouts must match name-for-name).
    CommonMismatch {
        /// The block name.
        block: String,
        /// The subroutine with the conflicting declaration.
        subroutine: String,
    },
    /// An actual names a variable not declared in the caller.
    UnknownActual {
        /// The variable name.
        name: String,
        /// The calling subroutine.
        caller: String,
    },
}

impl fmt::Display for InlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InlineError::UnknownSubroutine { name } => {
                write!(f, "call to unknown subroutine `{name}`")
            }
            InlineError::Recursion { name } => {
                write!(f, "recursive call chain through `{name}` is not analysable")
            }
            InlineError::ArityMismatch {
                callee,
                supplied,
                declared,
            } => write!(
                f,
                "call to `{callee}` passes {supplied} arguments but {declared} are declared"
            ),
            InlineError::NonAnalysable { callee, formal } => write!(
                f,
                "actual bound to formal `{formal}` of `{callee}` is not analysable"
            ),
            InlineError::CommonMismatch { block, subroutine } => write!(
                f,
                "COMMON /{block}/ declared with a different layout in `{subroutine}`"
            ),
            InlineError::UnknownActual { name, caller } => {
                write!(f, "actual `{name}` not declared in caller `{caller}`")
            }
        }
    }
}

impl std::error::Error for InlineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(InlineError::Recursion { name: "f".into() }
            .to_string()
            .contains("recursive"));
        assert!(InlineError::ArityMismatch {
            callee: "g".into(),
            supplied: 1,
            declared: 2
        }
        .to_string()
        .contains("1 arguments"));
    }
}
