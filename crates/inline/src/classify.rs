//! Actual-parameter classification and the Table 2 census.
//!
//! An actual parameter `AP` bound to a formal `FP` is (paper §3.6):
//!
//! * **propagateable** — every callee reference to `FP` can be rewritten as
//!   a reference to `AP` itself, preserving reuse between caller and
//!   callees. This holds when `FP` is a scalar, a one-dimensional array, or
//!   both are arrays of the same dimensionality with matching sizes in all
//!   but the last dimension;
//! * **renameable** — references to `FP` are rewritten against a fresh view
//!   `AP'` with `@AP = @AP'`, preserving reuse within the callee. This
//!   holds when all but the last dimensions of both are statically known;
//! * **non-analysable** — otherwise; such a call cannot be abstractly
//!   inlined.

use crate::error::InlineError;
use cme_ir::{Actual, SCall, SNode, SourceProgram, Subroutine, VarDecl};

/// Classification of one actual parameter (Table 2 columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActualClass {
    /// `P-able`: the actual's own declaration is usable in the callee.
    Propagateable,
    /// `R-able`: a renamed view with the same base address is needed.
    Renameable,
    /// `N-able`: the call cannot be analysed.
    NonAnalysable,
}

/// Classifies an actual/formal binding.
///
/// # Errors
///
/// Returns [`InlineError::UnknownActual`] when the actual's variable is not
/// declared in the caller.
pub fn classify_actual(
    caller: &Subroutine,
    actual: &Actual,
    formal: &VarDecl,
) -> Result<ActualClass, InlineError> {
    let Some(ap) = caller.decl(&actual.name) else {
        return Err(InlineError::UnknownActual {
            name: actual.name.clone(),
            caller: caller.name.clone(),
        });
    };
    if ap.elem_bytes != formal.elem_bytes {
        return Ok(ActualClass::NonAnalysable);
    }
    // Scalar or 1-D formals are always propagateable.
    if formal.is_scalar() || formal.dims.len() == 1 {
        return Ok(ActualClass::Propagateable);
    }
    // Same rank with matching sizes in all but the last dimension.
    if ap.dims.len() == formal.dims.len() {
        let all_but_last_match = ap
            .dims
            .iter()
            .zip(&formal.dims)
            .take(formal.dims.len() - 1)
            .all(|(a, b)| match (a.fixed(), b.fixed()) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            });
        if all_but_last_match {
            return Ok(ActualClass::Propagateable);
        }
    }
    // Renameable: all but the last dimension statically known on both sides.
    let known = |d: &VarDecl| {
        d.dims
            .iter()
            .take(d.dims.len().saturating_sub(1))
            .all(|x| x.fixed().is_some())
    };
    if known(ap) && known(formal) {
        return Ok(ActualClass::Renameable);
    }
    Ok(ActualClass::NonAnalysable)
}

/// The census of Table 2: actual-parameter classes and analysable calls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Census {
    /// Propagateable actuals.
    pub propagateable: usize,
    /// Renameable actuals.
    pub renameable: usize,
    /// Non-analysable actuals.
    pub non_analysable: usize,
    /// Total call statements.
    pub calls: usize,
    /// Calls whose actuals are all analysable (`A-able`).
    pub analysable_calls: usize,
}

impl Census {
    /// Total actuals examined.
    pub fn total_actuals(&self) -> usize {
        self.propagateable + self.renameable + self.non_analysable
    }

    /// Fraction of analysable calls, in percent (`100` for call-free
    /// programs, matching the convention of Table 2's TOTAL row).
    pub fn analysable_pct(&self) -> f64 {
        if self.calls == 0 {
            100.0
        } else {
            100.0 * self.analysable_calls as f64 / self.calls as f64
        }
    }

    /// Element-wise sum, for suite-level totals.
    pub fn add(&self, other: &Census) -> Census {
        Census {
            propagateable: self.propagateable + other.propagateable,
            renameable: self.renameable + other.renameable,
            non_analysable: self.non_analysable + other.non_analysable,
            calls: self.calls + other.calls,
            analysable_calls: self.analysable_calls + other.analysable_calls,
        }
    }
}

/// Walks every call site of the program (examining only the call and its
/// callee, as in Table 2) and tallies the census.
///
/// Calls to unknown subroutines count as non-analysable (one `N-able`
/// actual is charged when the callee cannot even be resolved).
pub fn census(program: &SourceProgram) -> Census {
    let mut out = Census::default();
    for sub in &program.subroutines {
        census_nodes(program, sub, &sub.body, &mut out);
    }
    out
}

fn census_nodes(program: &SourceProgram, caller: &Subroutine, nodes: &[SNode], out: &mut Census) {
    for n in nodes {
        match n {
            SNode::Loop(l) => census_nodes(program, caller, &l.body, out),
            SNode::If(i) => {
                census_nodes(program, caller, &i.then_body, out);
                census_nodes(program, caller, &i.else_body, out);
            }
            SNode::Call(call) => {
                out.calls += 1;
                if census_call(program, caller, call, out) {
                    out.analysable_calls += 1;
                }
            }
            SNode::Assign(_) => {}
        }
    }
}

fn census_call(
    program: &SourceProgram,
    caller: &Subroutine,
    call: &SCall,
    out: &mut Census,
) -> bool {
    let Some(callee) = program.subroutine(&call.callee) else {
        out.non_analysable += 1;
        return false;
    };
    if callee.formals.len() != call.args.len() {
        out.non_analysable += call.args.len().max(1);
        return false;
    }
    let mut ok = true;
    for (actual, fname) in call.args.iter().zip(&callee.formals) {
        let class = callee
            .decl(fname)
            .map(|fp| classify_actual(caller, actual, fp).unwrap_or(ActualClass::NonAnalysable))
            .unwrap_or(ActualClass::NonAnalysable);
        match class {
            ActualClass::Propagateable => out.propagateable += 1,
            ActualClass::Renameable => out.renameable += 1,
            ActualClass::NonAnalysable => {
                out.non_analysable += 1;
                // A non-analysable actual only blocks inlining when the
                // callee actually references the formal; a dead formal has
                // no memory accesses to rewrite. (Several Table 2 rows —
                // hydro2d, CSS, MTSI — have N-able actuals yet count every
                // call as analysable, which is only consistent under this
                // rule.)
                if cme_ir::ast::references_name(&callee.body, fname) {
                    ok = false;
                }
            }
        }
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use cme_ir::{LinExpr, VarKind};

    fn caller_with(decls: Vec<VarDecl>) -> Subroutine {
        let mut s = Subroutine::new("caller");
        s.decls = decls;
        s
    }

    #[test]
    fn scalar_formal_is_propagateable() {
        let caller = caller_with(vec![
            VarDecl::scalar("X", 8),
            VarDecl::array("A", &[10, 10], 8),
        ]);
        let fp = VarDecl::scalar("Y", 8).formal();
        assert_eq!(
            classify_actual(&caller, &Actual::var("X"), &fp).unwrap(),
            ActualClass::Propagateable
        );
        // Array element to scalar formal: also propagateable.
        let elem = Actual::element("A", vec![LinExpr::var("I"), LinExpr::var("J")]);
        assert_eq!(
            classify_actual(&caller, &elem, &fp).unwrap(),
            ActualClass::Propagateable
        );
    }

    #[test]
    fn one_dimensional_formal_is_propagateable() {
        // Fig 5: D(400) bound to B(20,20).
        let caller = caller_with(vec![VarDecl::array("B", &[20, 20], 8)]);
        let fp = VarDecl::array("D", &[400], 8).formal();
        assert_eq!(
            classify_actual(&caller, &Actual::var("B"), &fp).unwrap(),
            ActualClass::Propagateable
        );
    }

    #[test]
    fn matching_dims_propagateable() {
        // Fig 5: C(10,10) bound to A(10,10).
        let caller = caller_with(vec![VarDecl::array("A", &[10, 10], 8)]);
        let fp = VarDecl::array("C", &[10, 10], 8).formal();
        assert_eq!(
            classify_actual(&caller, &Actual::var("A"), &fp).unwrap(),
            ActualClass::Propagateable
        );
        // Mismatching last dimension is fine.
        let fp2 = VarDecl::array("C", &[10, 99], 8).formal();
        assert_eq!(
            classify_actual(&caller, &Actual::var("A"), &fp2).unwrap(),
            ActualClass::Propagateable
        );
    }

    #[test]
    fn shape_change_is_renameable() {
        // Fig 5: T(100,4) bound to B(20,20); S(10,10,*) bound to B(I1,I2).
        let caller = caller_with(vec![VarDecl::array("B", &[20, 20], 8)]);
        let t = VarDecl::array("T", &[100, 4], 8).formal();
        assert_eq!(
            classify_actual(&caller, &Actual::var("B"), &t).unwrap(),
            ActualClass::Renameable
        );
        let s = VarDecl::array("S", &[10, 10, 1], 8)
            .formal()
            .assumed_last_dim();
        let elem = Actual::element("B", vec![LinExpr::var("I1"), LinExpr::var("I2")]);
        assert_eq!(
            classify_actual(&caller, &elem, &s).unwrap(),
            ActualClass::Renameable
        );
    }

    #[test]
    fn unknown_or_mismatched_is_rejected() {
        let caller = caller_with(vec![VarDecl::array("B", &[20, 20], 4)]);
        let fp = VarDecl::array("C", &[10, 10], 8).formal();
        // Element size mismatch: non-analysable.
        assert_eq!(
            classify_actual(&caller, &Actual::var("B"), &fp).unwrap(),
            ActualClass::NonAnalysable
        );
        assert!(matches!(
            classify_actual(&caller, &Actual::var("Q"), &fp),
            Err(InlineError::UnknownActual { .. })
        ));
    }

    #[test]
    fn census_counts_fig5_like_program() {
        // Caller passes: X (scalar→scalar P), A (match P), B (1-D view P),
        // B elem (assumed-size R) to f; and to g: A elems (P, P) and B→T (R).
        let mut main = Subroutine::new("MAIN");
        main.decls = vec![
            VarDecl::scalar("X", 8),
            VarDecl::array("A", &[10, 10], 8),
            VarDecl::array("B", &[20, 20], 8),
        ];
        main.body = vec![
            SNode::call(
                "f",
                vec![
                    Actual::var("X"),
                    Actual::var("A"),
                    Actual::var("B"),
                    Actual::element("B", vec![LinExpr::constant(1), LinExpr::constant(1)]),
                ],
            ),
            SNode::call(
                "g",
                vec![
                    Actual::element("A", vec![LinExpr::constant(1), LinExpr::constant(1)]),
                    Actual::element("A", vec![LinExpr::constant(1), LinExpr::constant(2)]),
                    Actual::var("B"),
                ],
            ),
        ];
        let mut f = Subroutine::new("f");
        f.formals = vec!["Y".into(), "C".into(), "D".into(), "S".into()];
        f.decls = vec![
            VarDecl::scalar("Y", 8).formal(),
            VarDecl::array("C", &[10, 10], 8).formal(),
            VarDecl::array("D", &[400], 8).formal(),
            VarDecl::array("S", &[10, 10, 1], 8)
                .formal()
                .assumed_last_dim(),
        ];
        let mut g = Subroutine::new("g");
        g.formals = vec!["E".into(), "F".into(), "T".into()];
        g.decls = vec![
            VarDecl::array("E", &[10, 10], 8).formal(),
            VarDecl::array("F", &[10], 8).formal(),
            VarDecl::array("T", &[100, 4], 8).formal(),
        ];
        let prog = SourceProgram {
            name: "fig5".into(),
            subroutines: vec![main, f, g],
            entry: "MAIN".into(),
        };
        let c = census(&prog);
        assert_eq!(c.calls, 2);
        assert_eq!(c.analysable_calls, 2);
        assert_eq!(c.propagateable, 5);
        assert_eq!(c.renameable, 2);
        assert_eq!(c.non_analysable, 0);
        assert_eq!(c.total_actuals(), 7);
        assert!((c.analysable_pct() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn census_flags_unknown_callee() {
        let mut main = Subroutine::new("MAIN");
        main.body = vec![SNode::call("nope", vec![])];
        let prog = SourceProgram::single("p", main);
        let c = census(&prog);
        assert_eq!(c.calls, 1);
        assert_eq!(c.analysable_calls, 0);
        assert_eq!(c.non_analysable, 1);
    }

    #[test]
    fn formal_kind_is_orthogonal() {
        // classify_actual never looks at VarKind of the caller's decl.
        let mut caller = caller_with(vec![VarDecl::array("A", &[10, 10], 8).formal()]);
        caller.formals = vec!["A".into()];
        assert_eq!(caller.decl("A").unwrap().kind, VarKind::Formal);
        let fp = VarDecl::array("C", &[10, 10], 8).formal();
        assert_eq!(
            classify_actual(&caller, &Actual::var("A"), &fp).unwrap(),
            ActualClass::Propagateable
        );
    }
}
