//! Workloads for the CME evaluation: the paper's kernels (Fig. 8) and
//! whole-program stand-ins for the Table 5/6 programs.
//!
//! # Example
//!
//! ```
//! let program = cme_workloads::hydro(10, 10);
//! assert_eq!(program.name(), "HYDRO");
//! assert_eq!(program.roots().len(), 3); // three 2-deep nests
//! ```

pub mod kernels;
pub mod kernels_extra;
pub mod suite;
pub mod whole;

pub use kernels::{
    hydro, hydro_source, mgrid, mgrid_source, mmt, mmt_source, HYDRO_SRC, MGRID_SRC, MMT_SRC,
};
pub use kernels_extra::{dgefa, livermore1, livermore5, mxm};
pub use suite::{synthesize_row, table2_suite, SuiteRow, TABLE2_ROWS};
pub use whole::{
    applu_like, applu_like_source, swim_like, swim_like_source, tomcatv_like, tomcatv_like_source,
    SWIM_LIKE_SRC, TOMCATV_LIKE_SRC,
};
