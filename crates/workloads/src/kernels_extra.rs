//! Additional validation kernels in the style of the suites the paper
//! reports validating against (Livermore loops, Linpack, Lapack).
//!
//! These exercise shapes the Fig. 8 kernels do not: 1-D multi-offset
//! streams, triangular elimination nests whose bounds depend on outer
//! indices, and classical `ijk` matrix multiply.

use cme_ir::{normalize, NormalizeOptions, Program, SourceProgram};

/// Livermore kernel 1 (hydro fragment): a 1-D stream with shifted reads.
pub const LIVERMORE1_SRC: &str = "
      PROGRAM LIVERM1
      REAL*8 X, Y, Z
      DIMENSION X(N+11), Y(N+11), Z(N+11)
      Q = 0.5D0
      R = 0.25D0
      T = 0.125D0
      DO K = 1, N
        X(K) = Q + Y(K)*(R*Z(K+10) + T*Z(K+11))
      ENDDO
      END
";

/// Livermore kernel 5 (tri-diagonal elimination, carried dependence).
pub const LIVERMORE5_SRC: &str = "
      PROGRAM LIVERM5
      REAL*8 X, Y, Z
      DIMENSION X(N), Y(N), Z(N)
      DO I = 2, N
        X(I) = Z(I) * (Y(I) - X(I-1))
      ENDDO
      END
";

/// Linpack DGEFA-style column elimination (no pivot search): triangular
/// nests with bounds affine in the outer index.
pub const DGEFA_SRC: &str = "
      PROGRAM DGEFA
      REAL*8 A
      DIMENSION A(N, N)
      DO K = 1, N-1
        DO I = K+1, N
          A(I,K) = A(I,K) / A(K,K)
        ENDDO
        DO J = K+1, N
          DO I = K+1, N
            A(I,J) = A(I,J) - A(I,K)*A(K,J)
          ENDDO
        ENDDO
      ENDDO
      END
";

/// Classical `ijk` matrix multiply (Lapack flavour).
pub const MXM_SRC: &str = "
      PROGRAM MXM
      REAL*8 A, B, C
      DIMENSION A(N,N), B(N,N), C(N,N)
      DO J = 1, N
        DO I = 1, N
          DO K = 1, N
            C(I,J) = C(I,J) + A(I,K)*B(K,J)
          ENDDO
        ENDDO
      ENDDO
      END
";

fn build(src: &str, params: &[(&str, i64)]) -> Program {
    let source: SourceProgram = cme_fortran::parse_with_params(src, params).expect("kernel parses");
    normalize(&source, &NormalizeOptions::default()).expect("kernel normalises")
}

/// Livermore kernel 1, normalised.
pub fn livermore1(n: i64) -> Program {
    build(LIVERMORE1_SRC, &[("N", n)])
}

/// Livermore kernel 5, normalised.
pub fn livermore5(n: i64) -> Program {
    build(LIVERMORE5_SRC, &[("N", n)])
}

/// DGEFA-style elimination, normalised.
pub fn dgefa(n: i64) -> Program {
    build(DGEFA_SRC, &[("N", n)])
}

/// `ijk` matrix multiply, normalised.
pub fn mxm(n: i64) -> Program {
    build(MXM_SRC, &[("N", n)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use cme_analysis::{EstimateMisses, FindMisses, SamplingOptions};
    use cme_cache::{CacheConfig, Simulator};

    fn check_conservative_and_close(name: &str, p: &Program, cfg: CacheConfig, tol: f64) {
        let sim = Simulator::new(cfg).run(p);
        let find = FindMisses::new(p, cfg).run();
        let predicted = find.exact_misses().unwrap();
        assert!(
            predicted >= sim.total_misses(),
            "{name}: underestimate {predicted} < {}",
            sim.total_misses()
        );
        let err = (predicted - sim.total_misses()) as f64 / sim.total_accesses() as f64;
        assert!(err <= tol, "{name}: abs miss-ratio error {err:.4} > {tol}");
    }

    #[test]
    fn livermore1_exact() {
        let p = livermore1(400);
        for assoc in [1u32, 2] {
            let cfg = CacheConfig::new(2048, 32, assoc).unwrap();
            check_conservative_and_close("livermore1", &p, cfg, 0.0);
        }
    }

    #[test]
    fn livermore5_exact() {
        let p = livermore5(400);
        let cfg = CacheConfig::new(2048, 32, 1).unwrap();
        check_conservative_and_close("livermore5", &p, cfg, 0.0);
    }

    #[test]
    fn dgefa_close() {
        // Triangular bounds: RIS facets make a little reuse point-dependent;
        // conservative with a small overestimate budget.
        let p = dgefa(24);
        for assoc in [1u32, 2] {
            let cfg = CacheConfig::new(2048, 32, assoc).unwrap();
            check_conservative_and_close("dgefa", &p, cfg, 0.02);
        }
    }

    #[test]
    fn mxm_exact_or_nearly() {
        let p = mxm(24);
        let cfg = CacheConfig::new(4096, 32, 2).unwrap();
        check_conservative_and_close("mxm", &p, cfg, 0.01);
    }

    #[test]
    fn estimate_matches_on_all_extra_kernels() {
        let kernels = [
            ("livermore1", livermore1(2000)),
            ("livermore5", livermore5(2000)),
            ("dgefa", dgefa(40)),
            ("mxm", mxm(40)),
        ];
        let cfg = CacheConfig::new(4096, 32, 2).unwrap();
        for (name, p) in kernels {
            let sim = Simulator::new(cfg).run(&p).miss_ratio();
            let est = EstimateMisses::new(&p, cfg, SamplingOptions::paper_default())
                .run()
                .miss_ratio();
            assert!(
                (est - sim).abs() < 0.03,
                "{name}: estimate {est:.4} vs sim {sim:.4}"
            );
        }
    }
}
