//! The paper's three kernels (Fig. 8), embedded as FORTRAN source.
//!
//! * **Hydro** — 2-D explicit hydrodynamics, Livermore kernel 18: three
//!   perfect 2-deep nests over nine `(JN+1)×(KN+1)` arrays.
//! * **MGRID** — the 3-D imperfect nest from MGRID (the interpolation onto
//!   the fine grid), with shared `CONTINUE` termination labels and
//!   coefficient-2 subscripts. Fig. 8 abbreviates the fine grid as
//!   `U(M,M,M)`; the real routine's fine grid is `(2M−1)³`, which is what
//!   the stride-2 subscripts require to stay in bounds, so that is used
//!   here.
//! * **MMT** — the 3-D blocked computation of `D = A·Bᵀ`; the `WB` copy is
//!   *not* uniformly generated with `B` (transposition), which is why the
//!   paper's Table 3 overestimates slightly on this kernel.
//!
//! The sources are transcriptions of Fig. 8 with continuation lines joined
//! (`&`) — the memory reference structure is identical.

use cme_ir::{normalize, NormalizeOptions, Program, SourceProgram};

/// Hydro (Livermore kernel 18) source, parameterised by `JN`, `KN`.
pub const HYDRO_SRC: &str = "
      PROGRAM HYDRO
      REAL*8 ZA, ZP, ZQ, ZR, ZM, ZB, ZU, ZV, ZZ
      DIMENSION ZA(JN+1,KN+1), ZP(JN+1,KN+1), ZQ(JN+1,KN+1)
      DIMENSION ZR(JN+1,KN+1), ZM(JN+1,KN+1), ZB(JN+1,KN+1)
      DIMENSION ZU(JN+1,KN+1), ZV(JN+1,KN+1), ZZ(JN+1,KN+1)
      T = 0.003700D0
      S = 0.004100D0
      DO K = 2, KN
        DO J = 2, JN
          ZA(J,K) = (ZP(J-1,K+1)+ZQ(J-1,K+1)-ZP(J-1,K)-ZQ(J-1,K)) &
            *(ZR(J,K)+ZR(J-1,K))/(ZM(J-1,K)+ZM(J-1,K+1))
          ZB(J,K) = (ZP(J-1,K)+ZQ(J-1,K)-ZP(J,K)-ZQ(J,K)) &
            *(ZR(J,K)+ZR(J,K-1))/(ZM(J,K)+ZM(J-1,K))
        ENDDO
      ENDDO
      DO K = 2, KN
        DO J = 2, JN
          ZU(J,K) = ZU(J,K) + S*(ZA(J,K)*(ZZ(J,K)-ZZ(J+1,K)) &
            -ZA(J-1,K)*(ZZ(J,K)-ZZ(J-1,K)) &
            -ZB(J,K)*(ZZ(J,K)-ZZ(J,K-1)) &
            +ZB(J,K+1)*(ZZ(J,K)-ZZ(J,K+1)))
          ZV(J,K) = ZV(J,K) + S*(ZA(J,K)*(ZR(J,K)-ZR(J+1,K)) &
            -ZA(J-1,K)*(ZR(J,K)-ZR(J-1,K)) &
            -ZB(J,K)*(ZR(J,K)-ZR(J,K-1)) &
            +ZB(J,K+1)*(ZR(J,K)-ZR(J,K+1)))
        ENDDO
      ENDDO
      DO K = 2, KN
        DO J = 2, JN
          ZR(J,K) = ZR(J,K) + T*ZU(J,K)
          ZZ(J,K) = ZZ(J,K) + T*ZV(J,K)
        ENDDO
      ENDDO
      END
";

/// MGRID nest source, parameterised by `M`.
pub const MGRID_SRC: &str = "
      PROGRAM MGRID
      REAL*8 U, Z
      DIMENSION U(2*M-1,2*M-1,2*M-1), Z(M,M,M)
      DO 400 I3 = 2, M-1
      DO 200 I2 = 2, M-1
      DO 100 I1 = 2, M-1
        U(2*I1-1,2*I2-1,2*I3-1) = U(2*I1-1,2*I2-1,2*I3-1) + Z(I1,I2,I3)
  100 CONTINUE
      DO 200 I1 = 2, M-1
        U(2*I1-2,2*I2-1,2*I3-1) = U(2*I1-2,2*I2-1,2*I3-1) &
          + 0.5D0*(Z(I1-1,I2,I3)+Z(I1,I2,I3))
  200 CONTINUE
      DO 400 I2 = 2, M-1
      DO 300 I1 = 2, M-1
        U(2*I1-1,2*I2-2,2*I3-1) = U(2*I1-1,2*I2-2,2*I3-1) &
          + 0.5D0*(Z(I1,I2-1,I3)+Z(I1,I2,I3))
  300 CONTINUE
      DO 400 I1 = 2, M-1
        U(2*I1-2,2*I2-2,2*I3-1) = U(2*I1-2,2*I2-2,2*I3-1) &
          + 0.25D0*(Z(I1-1,I2-1,I3)+Z(I1-1,I2,I3) &
          + Z(I1,I2-1,I3)+Z(I1,I2,I3))
  400 CONTINUE
      END
";

/// MMT (blocked `D = A·Bᵀ`) source, parameterised by `N`, `BJ`, `BK`.
pub const MMT_SRC: &str = "
      PROGRAM MMT
      REAL*8 A, B, D, WB
      DIMENSION A(N,N), B(N,N), D(N,N), WB(N,N)
      DO J2 = 1, N, BJ
        DO K2 = 1, N, BK
          DO J = J2, J2+BJ-1
            DO K = K2, K2+BK-1
              WB(J-J2+1,K-K2+1) = B(K,J)
            ENDDO
          ENDDO
          DO I = 1, N
            DO K = K2, K2+BK-1
              RA = A(I,K)
              DO J = J2, J2+BJ-1
                D(I,J) = D(I,J) + WB(J-J2+1,K-K2+1)*RA
              ENDDO
            ENDDO
          ENDDO
        ENDDO
      ENDDO
      END
";

fn build(src: &str, params: &[(&str, i64)]) -> Program {
    let source = source_of(src, params);
    normalize(&source, &NormalizeOptions::default()).expect("kernel normalises")
}

fn source_of(src: &str, params: &[(&str, i64)]) -> SourceProgram {
    cme_fortran::parse_with_params(src, params).expect("kernel parses")
}

/// The Hydro kernel, normalised and ready for analysis.
///
/// The paper's Table 3 configuration is `hydro(100, 100)`.
pub fn hydro(jn: i64, kn: i64) -> Program {
    build(HYDRO_SRC, &[("JN", jn), ("KN", kn)])
}

/// Hydro in source form.
pub fn hydro_source(jn: i64, kn: i64) -> SourceProgram {
    source_of(HYDRO_SRC, &[("JN", jn), ("KN", kn)])
}

/// The MGRID nest, normalised. The paper uses `mgrid(100)`.
pub fn mgrid(m: i64) -> Program {
    build(MGRID_SRC, &[("M", m)])
}

/// MGRID in source form.
pub fn mgrid_source(m: i64) -> SourceProgram {
    source_of(MGRID_SRC, &[("M", m)])
}

/// The MMT blocked kernel, normalised. The paper's Table 3 row is
/// `mmt(100, 100, 50)`; Table 7 sweeps `(N, BJ, BK)`.
pub fn mmt(n: i64, bj: i64, bk: i64) -> Program {
    build(MMT_SRC, &[("N", n), ("BJ", bj), ("BK", bk)])
}

/// MMT in source form.
pub fn mmt_source(n: i64, bj: i64, bk: i64) -> SourceProgram {
    source_of(MMT_SRC, &[("N", n), ("BJ", bj), ("BK", bk)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hydro_access_counts() {
        // Nest 1: 2 statements × (10 + 8) refs? Count per §Fig 8:
        // ZA stmt: 4 ZP/ZQ + 2 ZR + 2 ZM reads + 1 write = 9; ZB same = 9.
        // Nest 2: ZU: read ZU + 4 ZA/ZB + 8 ZZ + write = 14; ZV same = 14.
        // Nest 3: ZR: 2 reads + write = 3; ZZ same = 3.
        let p = hydro(10, 10);
        let per_iter = (9 + 9) + (14 + 14) + (3 + 3);
        assert_eq!(p.total_accesses(), (9 * 9) as u64 * per_iter as u64);
        assert_eq!(p.depth(), 2);
        assert_eq!(p.roots().len(), 3);
    }

    #[test]
    fn mgrid_access_counts() {
        let p = mgrid(8);
        // 4 statements, each 6³ iterations: 3 + 4 + 4 + 6 accesses.
        assert_eq!(p.total_accesses(), 6 * 6 * 6 * (3 + 4 + 4 + 6));
        assert_eq!(p.depth(), 3);
        // One top-level I3 loop.
        assert_eq!(p.roots().len(), 1);
        // Labels: I3 loop contains two I2 loops; first has two I1 loops,
        // second has two I1 loops.
        assert_eq!(p.roots()[0].inner.len(), 2);
        assert_eq!(p.roots()[0].inner[0].inner.len(), 2);
        assert_eq!(p.roots()[0].inner[1].inner.len(), 2);
    }

    #[test]
    fn mmt_access_counts() {
        let (n, bj, bk) = (8i64, 4, 2);
        let p = mmt(n, bj, bk);
        let blocks = (n / bj) * (n / bk);
        let copy = blocks * bj * bk * 2;
        let compute = blocks * n * bk * (1 + bj * 3);
        assert_eq!(p.total_accesses(), (copy + compute) as u64);
        assert_eq!(p.depth(), 5);
    }

    #[test]
    fn mmt_table3_scale_access_count() {
        // The Table 3 row (N=BJ=100, BK=50) performs ~3.03M accesses; the
        // miss counts there (145671 / 4.82 %) imply 3.02M.
        let p = mmt(100, 100, 50);
        let total = p.total_accesses();
        assert_eq!(total, 2 * 100 * 50 * (1 + 300) + 2 * 100 * 50 * 2);
        let implied = (145671.0 / 0.0482) as u64;
        let diff = total.abs_diff(implied) as f64 / total as f64;
        assert!(diff < 0.01, "total {total} vs implied {implied}");
    }

    #[test]
    fn hydro_matches_table3_exactly_at_small_scale() {
        // The Table 3 property: FindMisses equals the simulator on Hydro.
        // (Full-scale numbers are regenerated by the bench harness; here a
        // reduced size keeps the test fast.)
        let p = hydro(24, 24);
        for assoc in [1u32, 2, 4] {
            let cfg = cme_cache::CacheConfig::new(4096, 32, assoc).unwrap();
            let find = cme_analysis::FindMisses::new(&p, cfg).run();
            let sim = cme_cache::Simulator::new(cfg).run(&p);
            assert_eq!(
                find.exact_misses(),
                Some(sim.total_misses()),
                "assoc {assoc}"
            );
        }
    }

    #[test]
    fn mgrid_matches_simulator_at_small_scale() {
        let p = mgrid(10);
        for assoc in [1u32, 2] {
            let cfg = cme_cache::CacheConfig::new(4096, 32, assoc).unwrap();
            let find = cme_analysis::FindMisses::new(&p, cfg).run();
            let sim = cme_cache::Simulator::new(cfg).run(&p);
            assert_eq!(
                find.exact_misses(),
                Some(sim.total_misses()),
                "assoc {assoc}"
            );
        }
    }

    #[test]
    fn mmt_overestimates_slightly_like_the_paper() {
        // WB/B are not uniformly generated: the model may overestimate, and
        // must never underestimate.
        let p = mmt(16, 8, 4);
        let cfg = cme_cache::CacheConfig::new(2048, 32, 1).unwrap();
        let find = cme_analysis::FindMisses::new(&p, cfg).run();
        let sim = cme_cache::Simulator::new(cfg).run(&p);
        let pred = find.exact_misses().unwrap();
        assert!(pred >= sim.total_misses());
        let err = (pred - sim.total_misses()) as f64 / sim.total_accesses() as f64;
        assert!(err < 0.02, "abs miss-ratio error {err}");
    }
}
