//! Whole-program workloads standing in for the paper's Table 5/6 programs.
//!
//! SPECfp95 sources are proprietary, so these are *structural* stand-ins:
//! they match what the method actually exercises — subroutine/call-site
//! structure, propagateable actuals, loop depths, reference counts of the
//! same order, stencil-style reuse — while the arithmetic is generic.
//!
//! * [`tomcatv_like`] — one program unit, no calls, an outer iteration
//!   loop over several 2-D nests (mesh-generation style; the real Tomcatv
//!   has 79 references in one subroutine);
//! * [`swim_like`] — a shallow-water style driver with six subroutines
//!   communicating through `COMMON` and six parameterless calls, matching
//!   the paper's description of Swim (6 subroutines, 6 calls, ~52
//!   references);
//! * [`applu_like`] — a generated SSOR-style solver with 16 subroutines,
//!   ~25 call statements and ~2500 references over five-component 3-D
//!   fields, mirroring Applu's scale.

use cme_inline::Inliner;
use cme_ir::{
    normalize, Actual, LinExpr, NormalizeOptions, Program, SNode, SRef, SourceProgram, Subroutine,
    VarDecl,
};

/// Mesh-generation style single-unit program (`N×N` grid, `itmax` outer
/// iterations).
pub const TOMCATV_LIKE_SRC: &str = "
      PROGRAM TOMCATV
      REAL*8 X, Y, RX, RY, AA, DD, D
      DIMENSION X(N,N), Y(N,N), RX(N,N), RY(N,N)
      DIMENSION AA(N,N), DD(N,N), D(N,N)
      DO IT = 1, ITMAX
        DO J = 2, N-1
          DO I = 2, N-1
            XX = X(I+1,J) - X(I-1,J)
            YX = Y(I+1,J) - Y(I-1,J)
            XY = X(I,J+1) - X(I,J-1)
            YY = Y(I,J+1) - Y(I,J-1)
            A = 0.25D0 * (XY*XY + YY*YY)
            B = 0.25D0 * (XX*XX + YX*YX)
            C = 0.125D0 * (XX*XY + YX*YY)
            AA(I,J) = -B
            DD(I,J) = B + B + A*2.0D0
            PXX = X(I+1,J) - 2.0D0*X(I,J) + X(I-1,J)
            QXX = Y(I+1,J) - 2.0D0*Y(I,J) + Y(I-1,J)
            PYY = X(I,J+1) - 2.0D0*X(I,J) + X(I,J-1)
            QYY = Y(I,J+1) - 2.0D0*Y(I,J) + Y(I,J-1)
            PXY = X(I+1,J+1) - X(I+1,J-1) - X(I-1,J+1) + X(I-1,J-1)
            QXY = Y(I+1,J+1) - Y(I+1,J-1) - Y(I-1,J+1) + Y(I-1,J-1)
            RX(I,J) = A*PXX + B*PYY - C*PXY
            RY(I,J) = A*QXX + B*QYY - C*QXY
          ENDDO
        ENDDO
        DO J = 2, N-1
          DO I = 2, N-1
            D(I,J) = 1.0D0 / (DD(I,J) - AA(I,J)*D(I-1,J))
            RX(I,J) = (RX(I,J) - AA(I,J)*RX(I-1,J)) * D(I,J)
            RY(I,J) = (RY(I,J) - AA(I,J)*RY(I-1,J)) * D(I,J)
          ENDDO
        ENDDO
        DO J = 2, N-1
          DO I = 2, N-2
            RX(N-I,J) = RX(N-I,J) - D(N-I,J)*RX(N-I+1,J)
            RY(N-I,J) = RY(N-I,J) - D(N-I,J)*RY(N-I+1,J)
          ENDDO
        ENDDO
        DO J = 2, N-1
          DO I = 2, N-1
            X(I,J) = X(I,J) + RX(I,J)
            Y(I,J) = Y(I,J) + RY(I,J)
          ENDDO
        ENDDO
      ENDDO
      END
";

/// Shallow-water style program (`N×N` grid, `itmax` steps): six
/// subroutines communicating through `COMMON`, all six calls
/// parameterless — the structure the paper reports for Swim.
pub const SWIM_LIKE_SRC: &str = "
      PROGRAM SWIM
      REAL*8 U, V, P, UNEW, VNEW, PNEW, UOLD, VOLD, POLD, CU, CV, Z, H
      COMMON /FIELDS/ U, V, P, UNEW, VNEW, PNEW, UOLD, VOLD, POLD
      COMMON /WORK/ CU, CV, Z, H
      DIMENSION U(N,N), V(N,N), P(N,N)
      DIMENSION UNEW(N,N), VNEW(N,N), PNEW(N,N)
      DIMENSION UOLD(N,N), VOLD(N,N), POLD(N,N)
      DIMENSION CU(N,N), CV(N,N), Z(N,N), H(N,N)
      CALL INITAL
      CALL CALC3Z
      DO NCYCLE = 1, ITMAX
        CALL CALC1
        CALL CALC2
        CALL CALC3
      ENDDO
      CALL CALC3Z
      END
      SUBROUTINE INITAL
      REAL*8 U, V, P, UNEW, VNEW, PNEW, UOLD, VOLD, POLD
      COMMON /FIELDS/ U, V, P, UNEW, VNEW, PNEW, UOLD, VOLD, POLD
      DIMENSION U(N,N), V(N,N), P(N,N)
      DIMENSION UNEW(N,N), VNEW(N,N), PNEW(N,N)
      DIMENSION UOLD(N,N), VOLD(N,N), POLD(N,N)
      DO J = 1, N
        DO I = 1, N
          U(I,J) = 1.0D0
          V(I,J) = 2.0D0
          P(I,J) = 3.0D0
        ENDDO
      ENDDO
      END
      SUBROUTINE CALC1
      REAL*8 U, V, P, UNEW, VNEW, PNEW, UOLD, VOLD, POLD, CU, CV, Z, H
      COMMON /FIELDS/ U, V, P, UNEW, VNEW, PNEW, UOLD, VOLD, POLD
      COMMON /WORK/ CU, CV, Z, H
      DIMENSION U(N,N), V(N,N), P(N,N)
      DIMENSION UNEW(N,N), VNEW(N,N), PNEW(N,N)
      DIMENSION UOLD(N,N), VOLD(N,N), POLD(N,N)
      DIMENSION CU(N,N), CV(N,N), Z(N,N), H(N,N)
      DO J = 1, N-1
        DO I = 1, N-1
          CU(I+1,J) = 0.5D0*(P(I+1,J)+P(I,J))*U(I+1,J)
          CV(I,J+1) = 0.5D0*(P(I,J+1)+P(I,J))*V(I,J+1)
          Z(I+1,J+1) = (4.0D0*(V(I+1,J+1)-V(I,J+1))-U(I+1,J+1) &
            + U(I+1,J))/(P(I,J)+P(I+1,J)+P(I+1,J+1)+P(I,J+1))
          H(I,J) = P(I,J)+0.25D0*(U(I+1,J)*U(I+1,J)+U(I,J)*U(I,J) &
            + V(I,J+1)*V(I,J+1)+V(I,J)*V(I,J))
        ENDDO
      ENDDO
      END
      SUBROUTINE CALC2
      REAL*8 U, V, P, UNEW, VNEW, PNEW, UOLD, VOLD, POLD, CU, CV, Z, H
      COMMON /FIELDS/ U, V, P, UNEW, VNEW, PNEW, UOLD, VOLD, POLD
      COMMON /WORK/ CU, CV, Z, H
      DIMENSION U(N,N), V(N,N), P(N,N)
      DIMENSION UNEW(N,N), VNEW(N,N), PNEW(N,N)
      DIMENSION UOLD(N,N), VOLD(N,N), POLD(N,N)
      DIMENSION CU(N,N), CV(N,N), Z(N,N), H(N,N)
      DO J = 1, N-1
        DO I = 1, N-1
          UNEW(I+1,J) = UOLD(I+1,J) + 0.01D0*(Z(I+1,J+1)+Z(I+1,J)) &
            *(CV(I+1,J+1)+CV(I,J+1)+CV(I,J)+CV(I+1,J)) &
            - 0.02D0*(H(I+1,J)-H(I,J))
          VNEW(I,J+1) = VOLD(I,J+1) - 0.01D0*(Z(I+1,J+1)+Z(I,J+1)) &
            *(CU(I+1,J+1)+CU(I,J+1)+CU(I,J)+CU(I+1,J)) &
            - 0.02D0*(H(I,J+1)-H(I,J))
          PNEW(I,J) = POLD(I,J) - 0.03D0*(CU(I+1,J)-CU(I,J) &
            + CV(I,J+1)-CV(I,J))
        ENDDO
      ENDDO
      END
      SUBROUTINE CALC3
      REAL*8 U, V, P, UNEW, VNEW, PNEW, UOLD, VOLD, POLD
      COMMON /FIELDS/ U, V, P, UNEW, VNEW, PNEW, UOLD, VOLD, POLD
      DIMENSION U(N,N), V(N,N), P(N,N)
      DIMENSION UNEW(N,N), VNEW(N,N), PNEW(N,N)
      DIMENSION UOLD(N,N), VOLD(N,N), POLD(N,N)
      DO J = 1, N
        DO I = 1, N
          UOLD(I,J) = U(I,J) + 0.1D0*(UNEW(I,J) - 2.0D0*U(I,J) + UOLD(I,J))
          VOLD(I,J) = V(I,J) + 0.1D0*(VNEW(I,J) - 2.0D0*V(I,J) + VOLD(I,J))
          POLD(I,J) = P(I,J) + 0.1D0*(PNEW(I,J) - 2.0D0*P(I,J) + POLD(I,J))
          U(I,J) = UNEW(I,J)
          V(I,J) = VNEW(I,J)
          P(I,J) = PNEW(I,J)
        ENDDO
      ENDDO
      END
      SUBROUTINE CALC3Z
      REAL*8 U, V, P, UNEW, VNEW, PNEW, UOLD, VOLD, POLD
      COMMON /FIELDS/ U, V, P, UNEW, VNEW, PNEW, UOLD, VOLD, POLD
      DIMENSION U(N,N), V(N,N), P(N,N)
      DIMENSION UNEW(N,N), VNEW(N,N), PNEW(N,N)
      DIMENSION UOLD(N,N), VOLD(N,N), POLD(N,N)
      DO J = 1, N
        DO I = 1, N
          UOLD(I,J) = U(I,J)
          VOLD(I,J) = V(I,J)
          POLD(I,J) = P(I,J)
        ENDDO
      ENDDO
      END
";

/// Parses, inlines and normalises one of the FORTRAN whole programs.
fn prepare(src: &str, params: &[(&str, i64)]) -> Program {
    let source = cme_fortran::parse_with_params(src, params).expect("workload parses");
    let inlined = Inliner::new().inline(&source).expect("workload inlines");
    normalize(&inlined, &NormalizeOptions::default()).expect("workload normalises")
}

/// Tomcatv-like program, normalised (`n ≥ 5`, `itmax ≥ 1`).
pub fn tomcatv_like(n: i64, itmax: i64) -> Program {
    prepare(TOMCATV_LIKE_SRC, &[("N", n), ("ITMAX", itmax)])
}

/// Tomcatv-like in source form.
pub fn tomcatv_like_source(n: i64, itmax: i64) -> SourceProgram {
    cme_fortran::parse_with_params(TOMCATV_LIKE_SRC, &[("N", n), ("ITMAX", itmax)])
        .expect("workload parses")
}

/// Swim-like program (with calls), inlined and normalised.
pub fn swim_like(n: i64, itmax: i64) -> Program {
    prepare(SWIM_LIKE_SRC, &[("N", n), ("ITMAX", itmax)])
}

/// Swim-like in source form (calls intact).
pub fn swim_like_source(n: i64, itmax: i64) -> SourceProgram {
    cme_fortran::parse_with_params(SWIM_LIKE_SRC, &[("N", n), ("ITMAX", itmax)])
        .expect("workload parses")
}

/// Applu-like program: a generated SSOR-style solver over five-component
/// 3-D fields with 16 subroutines and ~2500 references, mirroring the
/// structure the paper's largest program exercises (all actuals
/// propagateable).
pub fn applu_like_source(n: i64, itmax: i64) -> SourceProgram {
    let comps = 5i64;
    let fields = ["U", "RSD", "FRCT", "FLUX", "QS", "RHO"];
    let mut subs: Vec<Subroutine> = Vec::new();

    // 12 "physics" subroutines, each: three 3-deep nests over the five
    // components with 3-D stencil reads (jacld/jacu/blts/buts/rhs flavour).
    let nsubs = 12usize;
    for s in 0..nsubs {
        let mut sub = Subroutine::new(format!("PHYS{s:02}"));
        sub.formals = vec!["A".into(), "B".into()];
        sub.decls = vec![
            VarDecl::array("A", &[comps, n, n, n], 8).formal(),
            VarDecl::array("B", &[comps, n, n, n], 8).formal(),
        ];
        let (i, j, k) = (LinExpr::var("I"), LinExpr::var("J"), LinExpr::var("K"));
        let fref = |name: &str, m: i64, di: i64, dj: i64, dk: i64| {
            SRef::new(
                name,
                vec![
                    LinExpr::constant(m),
                    i.offset(di),
                    j.offset(dj),
                    k.offset(dk),
                ],
            )
        };
        // Nest 1: A(m,·) ← 7-point stencil of B plus edge terms and two
        // component couplings (jacld/jacu flavour).
        let mut body1 = Vec::new();
        for m in 1..=comps {
            body1.push(SNode::assign(
                fref("A", m, 0, 0, 0),
                vec![
                    fref("B", m, -1, 0, 0),
                    fref("B", m, 1, 0, 0),
                    fref("B", m, 0, -1, 0),
                    fref("B", m, 0, 1, 0),
                    fref("B", m, 0, 0, -1),
                    fref("B", m, 0, 0, 1),
                    fref("B", m, 0, 0, 0),
                    fref("B", m, -1, -1, 0),
                    fref("B", m, 1, 1, 0),
                    fref("B", m, 0, -1, -1),
                    fref("B", m, 0, 1, 1),
                    fref("B", m, -1, 0, -1),
                    fref("B", m, 1, 0, 1),
                    fref("A", m, -1, 0, 0),
                    fref("A", (m % comps) + 1, 0, 0, 0),
                ],
            ));
        }
        // Nest 2: B(m,·) ← backward sweep flavour (depends on s parity).
        let mut body2 = Vec::new();
        for m in 1..=comps {
            let (d1, d2) = if s % 2 == 0 { (-1, 1) } else { (1, -1) };
            body2.push(SNode::assign(
                fref("B", m, 0, 0, 0),
                vec![
                    fref("A", m, d1, 0, 0),
                    fref("A", m, 0, d2, 0),
                    fref("A", m, 0, 0, d1),
                    fref("A", m, d1, d2, 0),
                    fref("A", m, 0, d1, d2),
                    fref("B", (m % comps) + 1, 0, 0, 0),
                    fref("B", ((m + 1) % comps) + 1, 0, 0, 0),
                    fref("A", m, 0, 0, 0),
                    fref("B", m, d2, 0, 0),
                ],
            ));
        }
        // Nest 3: flux-difference update of A from both fields (rhs
        // flavour).
        let mut body3 = Vec::new();
        for m in 1..=comps {
            body3.push(SNode::assign(
                fref("A", m, 0, 0, 0),
                vec![
                    fref("A", m, 0, 0, 0),
                    fref("B", m, -1, 0, 0),
                    fref("B", m, 1, 0, 0),
                    fref("B", m, 0, -1, 0),
                    fref("B", m, 0, 1, 0),
                    fref("B", m, 0, 0, -1),
                    fref("B", m, 0, 0, 1),
                    fref("A", (m % comps) + 1, -1, 0, 0),
                    fref("A", (m % comps) + 1, 1, 0, 0),
                    fref("B", ((m + 1) % comps) + 1, 0, 0, 0),
                    fref("B", ((m + 2) % comps) + 1, 0, 0, 0),
                ],
            ));
        }
        let nest = |body: Vec<SNode>| {
            SNode::loop_(
                "K",
                2,
                n - 1,
                vec![SNode::loop_(
                    "J",
                    2,
                    n - 1,
                    vec![SNode::loop_("I", 2, n - 1, body)],
                )],
            )
        };
        sub.body = vec![nest(body1), nest(body2), nest(body3)];
        subs.push(sub);
    }

    // The small update pass: A(m,·) += B(m,·) over the whole field.
    {
        let mut sub = Subroutine::new("ADDF");
        sub.formals = vec!["A".into(), "B".into()];
        sub.decls = vec![
            VarDecl::array("A", &[comps, n, n, n], 8).formal(),
            VarDecl::array("B", &[comps, n, n, n], 8).formal(),
        ];
        let (i, j, k) = (LinExpr::var("I"), LinExpr::var("J"), LinExpr::var("K"));
        let m = LinExpr::var("M");
        sub.body = vec![SNode::loop_(
            "K",
            2,
            n - 1,
            vec![SNode::loop_(
                "J",
                2,
                n - 1,
                vec![SNode::loop_(
                    "I",
                    2,
                    n - 1,
                    vec![SNode::loop_(
                        "M",
                        1,
                        comps,
                        vec![SNode::assign(
                            SRef::new("A", vec![m.clone(), i.clone(), j.clone(), k.clone()]),
                            vec![
                                SRef::new("A", vec![m.clone(), i.clone(), j.clone(), k.clone()]),
                                SRef::new("B", vec![m.clone(), i.clone(), j.clone(), k.clone()]),
                            ],
                        )],
                    )],
                )],
            )],
        )];
        subs.push(sub);
    }

    // Two init/setup subroutines (setbv/setiv flavour).
    for (si, name) in ["SETBV", "SETIV"].iter().enumerate() {
        let mut sub = Subroutine::new(*name);
        sub.formals = vec!["A".into()];
        sub.decls = vec![VarDecl::array("A", &[comps, n, n, n], 8).formal()];
        let (i, j, k) = (LinExpr::var("I"), LinExpr::var("J"), LinExpr::var("K"));
        let mut body = Vec::new();
        for m in 1..=comps {
            body.push(SNode::assign(
                SRef::new(
                    "A",
                    vec![LinExpr::constant(m), i.clone(), j.clone(), k.clone()],
                ),
                if si == 0 {
                    vec![]
                } else {
                    vec![SRef::new(
                        "A",
                        vec![
                            LinExpr::constant((m % comps) + 1),
                            i.clone(),
                            j.clone(),
                            k.clone(),
                        ],
                    )]
                },
            ));
        }
        sub.body = vec![SNode::loop_(
            "K",
            1,
            n,
            vec![SNode::loop_("J", 1, n, vec![SNode::loop_("I", 1, n, body)])],
        )];
        subs.push(sub);
    }

    // MAIN: init calls + SSOR time loop calling the physics subroutines in
    // pairs over the global fields.
    let mut main = Subroutine::new("APPLU");
    for f in fields {
        main.decls.push(VarDecl::array(f, &[comps, n, n, n], 8));
    }
    let mut body = vec![
        SNode::call("SETBV", vec![Actual::var("U")]),
        SNode::call("SETIV", vec![Actual::var("RSD")]),
    ];
    let mut loop_body = Vec::new();
    for s in 0..nsubs {
        let a = fields[s % fields.len()];
        let b = fields[(s + 1) % fields.len()];
        loop_body.push(SNode::call(
            format!("PHYS{s:02}"),
            vec![Actual::var(a), Actual::var(b)],
        ));
    }
    // Norm/update passes (the `add`/`l2norm` flavour of Applu): small
    // subroutines called several times per step, bringing the call count to
    // Applu's scale without duplicating whole physics bodies.
    for s in 0..10usize {
        let a = fields[(s + 2) % fields.len()];
        let b = fields[(s + 3) % fields.len()];
        loop_body.push(SNode::call("ADDF", vec![Actual::var(a), Actual::var(b)]));
    }
    body.push(SNode::loop_("ISTEP", 1, itmax, loop_body));
    main.body = body;

    let mut subroutines = vec![main];
    subroutines.extend(subs);
    SourceProgram {
        name: "applu-like".into(),
        subroutines,
        entry: "APPLU".into(),
    }
}

/// Applu-like program, inlined and normalised.
pub fn applu_like(n: i64, itmax: i64) -> Program {
    let source = applu_like_source(n, itmax);
    let inlined = Inliner::new().inline(&source).expect("applu-like inlines");
    normalize(&inlined, &NormalizeOptions::default()).expect("applu-like normalises")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tomcatv_like_shape() {
        let src = tomcatv_like_source(16, 2);
        let stats = src.stats();
        assert_eq!(stats.subroutines, 1);
        assert_eq!(stats.calls, 0);
        // Same order as the real Tomcatv's 79 references.
        assert!((50..130).contains(&stats.references), "{stats:?}");
        let p = tomcatv_like(16, 2);
        assert_eq!(p.depth(), 3);
        assert!(p.total_accesses() > 0);
    }

    #[test]
    fn swim_like_shape() {
        // The paper's Swim: 6 subroutines, 6 parameterless calls, ~52 refs.
        let src = swim_like_source(16, 2);
        let stats = src.stats();
        assert_eq!(stats.subroutines, 6);
        assert_eq!(stats.calls, 6);
        assert!((40..100).contains(&stats.references), "{stats:?}");
        let census = cme_inline::census(&src);
        assert_eq!(census.total_actuals(), 0, "parameterless calls");
        assert_eq!(census.analysable_calls, census.calls);
        let p = swim_like(12, 2);
        assert!(p.total_accesses() > 0);
    }

    #[test]
    fn applu_like_shape() {
        let src = applu_like_source(8, 2);
        let stats = src.stats();
        assert_eq!(stats.subroutines, 16);
        assert!((10..30).contains(&stats.calls), "{stats:?}");
        // Mirrors Applu's 2565 references to within ~20 %.
        assert!((2000..3000).contains(&stats.references), "{stats:?}");
        let census = cme_inline::census(&src);
        assert_eq!(census.non_analysable, 0);
        assert_eq!(census.renameable, 0);
    }

    #[test]
    fn whole_programs_estimate_close_to_simulation() {
        // The Table 6 property at reduced scale: EstimateMisses within ~1 %
        // absolute of the simulator.
        for (name, p) in [("tomcatv", tomcatv_like(24, 2)), ("swim", swim_like(24, 2))] {
            let cfg = cme_cache::CacheConfig::new(4096, 32, 1).unwrap();
            let sim = cme_cache::Simulator::new(cfg).run(&p).miss_ratio();
            let est = cme_analysis::EstimateMisses::new(
                &p,
                cfg,
                cme_analysis::SamplingOptions::paper_default(),
            )
            .run()
            .miss_ratio();
            assert!(
                (est - sim).abs() < 0.03,
                "{name}: estimate {est:.4} vs simulator {sim:.4}"
            );
        }
    }
}
