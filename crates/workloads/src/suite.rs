//! Synthetic benchmark suite mirroring Table 2's call/parameter census.
//!
//! The paper tallies actual-parameter classes over SPECfp95 and the
//! Perfect Club (proprietary sources). This module synthesises, for each
//! row of Table 2, a program whose call sites contain *exactly* the row's
//! numbers of propagateable, renameable and non-analysable actuals and
//! analysable calls — so running the census over the generated suite
//! regenerates the table and exercises the classifier on ground-truth
//! labels.

use cme_ir::{Actual, LinExpr, SNode, SRef, SourceProgram, Subroutine, VarDecl};

/// One row of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuiteRow {
    /// Program name.
    pub name: &'static str,
    /// Propagateable actuals.
    pub propagateable: usize,
    /// Renameable actuals.
    pub renameable: usize,
    /// Non-analysable actuals.
    pub non_analysable: usize,
    /// Call statements.
    pub calls: usize,
    /// Analysable (`A-able`) calls.
    pub analysable: usize,
}

/// The twenty rows of Table 2 (SPECfp95 then Perfect Club).
pub const TABLE2_ROWS: &[SuiteRow] = &[
    SuiteRow {
        name: "Tomcatv",
        propagateable: 0,
        renameable: 0,
        non_analysable: 0,
        calls: 0,
        analysable: 0,
    },
    SuiteRow {
        name: "swim",
        propagateable: 0,
        renameable: 0,
        non_analysable: 0,
        calls: 5,
        analysable: 5,
    },
    SuiteRow {
        name: "su2cor",
        propagateable: 503,
        renameable: 87,
        non_analysable: 0,
        calls: 150,
        analysable: 150,
    },
    SuiteRow {
        name: "hydro2d",
        propagateable: 122,
        renameable: 0,
        non_analysable: 19,
        calls: 82,
        analysable: 82,
    },
    SuiteRow {
        name: "mgrid",
        propagateable: 68,
        renameable: 0,
        non_analysable: 35,
        calls: 23,
        analysable: 2,
    },
    SuiteRow {
        name: "applu",
        propagateable: 79,
        renameable: 0,
        non_analysable: 0,
        calls: 23,
        analysable: 23,
    },
    SuiteRow {
        name: "apsi",
        propagateable: 1601,
        renameable: 0,
        non_analysable: 210,
        calls: 186,
        analysable: 118,
    },
    SuiteRow {
        name: "fppp",
        propagateable: 83,
        renameable: 0,
        non_analysable: 3,
        calls: 17,
        analysable: 16,
    },
    SuiteRow {
        name: "turb3D",
        propagateable: 759,
        renameable: 0,
        non_analysable: 75,
        calls: 111,
        analysable: 86,
    },
    SuiteRow {
        name: "wave5",
        propagateable: 591,
        renameable: 2,
        non_analysable: 110,
        calls: 171,
        analysable: 127,
    },
    SuiteRow {
        name: "CSS",
        propagateable: 2489,
        renameable: 0,
        non_analysable: 8,
        calls: 965,
        analysable: 965,
    },
    SuiteRow {
        name: "LWSI",
        propagateable: 140,
        renameable: 0,
        non_analysable: 19,
        calls: 28,
        analysable: 18,
    },
    SuiteRow {
        name: "MTSI",
        propagateable: 186,
        renameable: 0,
        non_analysable: 2,
        calls: 63,
        analysable: 63,
    },
    SuiteRow {
        name: "NASI",
        propagateable: 236,
        renameable: 0,
        non_analysable: 237,
        calls: 75,
        analysable: 41,
    },
    SuiteRow {
        name: "OCSI",
        propagateable: 620,
        renameable: 0,
        non_analysable: 48,
        calls: 244,
        analysable: 209,
    },
    SuiteRow {
        name: "SDSI",
        propagateable: 189,
        renameable: 18,
        non_analysable: 49,
        calls: 129,
        analysable: 103,
    },
    SuiteRow {
        name: "SMSI",
        propagateable: 321,
        renameable: 0,
        non_analysable: 41,
        calls: 53,
        analysable: 38,
    },
    SuiteRow {
        name: "SRSI",
        propagateable: 242,
        renameable: 0,
        non_analysable: 176,
        calls: 50,
        analysable: 13,
    },
    SuiteRow {
        name: "TFSI",
        propagateable: 137,
        renameable: 0,
        non_analysable: 91,
        calls: 44,
        analysable: 13,
    },
    SuiteRow {
        name: "WSSI",
        propagateable: 836,
        renameable: 127,
        non_analysable: 7,
        calls: 185,
        analysable: 179,
    },
];

/// The actual classes a synthesised call site carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Kind {
    P,
    R,
    /// Live non-analysable actual: blocks inlining of its call.
    N,
    /// Non-analysable actual whose formal the callee never references: the
    /// call remains analysable (hydro2d/CSS/MTSI situation in Table 2).
    NDead,
}

/// Synthesises a program matching a row's census exactly.
///
/// Calls are distributed so that `calls − analysable` call sites carry at
/// least one non-analysable actual (an element-size mismatch) and the rest
/// carry none.
///
/// # Panics
///
/// Panics if the row is infeasible (`non_analysable < calls − analysable`);
/// every Table 2 row is feasible.
pub fn synthesize_row(row: &SuiteRow) -> SourceProgram {
    let bad_calls = row.calls - row.analysable;
    assert!(
        row.non_analysable >= bad_calls,
        "row {} infeasible: {} N-able actuals for {} non-analysable calls",
        row.name,
        row.non_analysable,
        bad_calls
    );

    // Distribute actuals over call sites.
    let mut call_kinds: Vec<Vec<Kind>> = vec![Vec::new(); row.calls];
    // Every non-analysable call gets one *live* N actual; the remaining
    // N-able actuals bind dead formals and may sit anywhere.
    for kinds in call_kinds.iter_mut().take(bad_calls) {
        kinds.push(Kind::N);
    }
    for i in bad_calls..row.non_analysable {
        call_kinds[i % row.calls.max(1)].push(Kind::NDead);
    }
    for i in 0..row.renameable {
        call_kinds[i % row.calls.max(1)].push(Kind::R);
    }
    for i in 0..row.propagateable {
        call_kinds[i % row.calls.max(1)].push(Kind::P);
    }

    // MAIN declarations: one actual variable per class.
    let mut main = Subroutine::new("MAIN");
    main.decls = vec![
        VarDecl::array("AP", &[10, 10], 8), // matching shape: P-able
        VarDecl::array("AR", &[20, 20], 8), // reshaped in callee: R-able
        VarDecl::array("AN", &[10, 10], 4), // element-size mismatch: N-able
        VarDecl::array("WORK", &[10], 8),
    ];

    // One callee per distinct signature.
    let mut callees: std::collections::HashMap<Vec<Kind>, String> =
        std::collections::HashMap::new();
    let mut subs: Vec<Subroutine> = Vec::new();
    for kinds in &call_kinds {
        if callees.contains_key(kinds) {
            continue;
        }
        let name = format!("S{:03}", subs.len());
        let mut sub = Subroutine::new(name.clone());
        let i = LinExpr::var("I");
        let mut body_reads: Vec<SRef> = Vec::new();
        for (j, k) in kinds.iter().enumerate() {
            let fname = format!("F{j}");
            let decl = match k {
                // Matching 10×10 REAL*8: propagateable.
                Kind::P => VarDecl::array(&fname, &[10, 10], 8).formal(),
                // 100×4 view of a 20×20 actual: renameable.
                Kind::R => VarDecl::array(&fname, &[100, 4], 8).formal(),
                // REAL*8 formal bound to a REAL*4 actual: non-analysable.
                Kind::N | Kind::NDead => VarDecl::array(&fname, &[10, 10], 8).formal(),
            };
            sub.formals.push(fname.clone());
            sub.decls.push(decl);
            if *k != Kind::NDead {
                body_reads.push(SRef::new(fname, vec![i.clone(), LinExpr::constant(1)]));
            }
        }
        sub.body = vec![SNode::loop_(
            "I",
            1,
            10,
            vec![SNode::reads_only(body_reads)],
        )];
        callees.insert(kinds.clone(), name);
        subs.push(sub);
    }

    // MAIN body: the calls.
    for kinds in &call_kinds {
        let callee = callees[kinds].clone();
        let args: Vec<Actual> = kinds
            .iter()
            .map(|k| match k {
                Kind::P => Actual::var("AP"),
                Kind::R => Actual::var("AR"),
                Kind::N | Kind::NDead => Actual::var("AN"),
            })
            .collect();
        main.body.push(SNode::call(callee, args));
    }
    // A little real work so the program is non-trivial.
    main.body.push(SNode::loop_(
        "I",
        1,
        10,
        vec![SNode::assign(
            SRef::new("WORK", vec![LinExpr::var("I")]),
            vec![],
        )],
    ));

    let mut subroutines = vec![main];
    subroutines.extend(subs);
    SourceProgram {
        name: row.name.to_string(),
        subroutines,
        entry: "MAIN".to_string(),
    }
}

/// The whole synthetic suite, one program per Table 2 row.
pub fn table2_suite() -> Vec<(SuiteRow, SourceProgram)> {
    TABLE2_ROWS
        .iter()
        .map(|row| (*row, synthesize_row(row)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cme_inline::census;

    #[test]
    fn every_row_census_matches_exactly() {
        for (row, program) in table2_suite() {
            let c = census(&program);
            assert_eq!(c.propagateable, row.propagateable, "{}", row.name);
            assert_eq!(c.renameable, row.renameable, "{}", row.name);
            assert_eq!(c.non_analysable, row.non_analysable, "{}", row.name);
            assert_eq!(c.calls, row.calls, "{}", row.name);
            assert_eq!(c.analysable_calls, row.analysable, "{}", row.name);
        }
    }

    #[test]
    fn totals_match_paper() {
        // Table 2's TOTAL row: 9202 / 234 / 1130 actuals; 2604 calls, 2251
        // analysable (86.44 %).
        let mut total = cme_inline::Census::default();
        for (_, program) in table2_suite() {
            total = total.add(&census(&program));
        }
        assert_eq!(total.propagateable, 9202);
        assert_eq!(total.renameable, 234);
        assert_eq!(total.non_analysable, 1130);
        assert_eq!(total.calls, 2604);
        assert_eq!(total.analysable_calls, 2251);
        assert!((total.analysable_pct() - 86.44).abs() < 0.05);
        let pct_p = 100.0 * total.propagateable as f64 / total.total_actuals() as f64;
        assert!((pct_p - 87.09).abs() < 0.05);
    }

    #[test]
    fn analysable_rows_inline_fully() {
        // Rows with zero non-analysable actuals must inline end-to-end.
        for (row, program) in table2_suite() {
            if row.non_analysable == 0 && row.calls > 0 {
                let inlined = cme_inline::Inliner::new().inline(&program);
                assert!(inlined.is_ok(), "{} failed: {:?}", row.name, inlined.err());
                assert_eq!(inlined.unwrap().stats().calls, 0);
            }
        }
    }
}
