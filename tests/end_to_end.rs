//! Cross-crate integration tests: FORTRAN source → inlining →
//! normalisation → reuse → miss equations → validation against the
//! simulator.

use cme::prelude::*;
use cme_analysis::SamplingOptions;

#[test]
fn fortran_to_prediction_pipeline() {
    let src = "
      PROGRAM PIPE
      REAL*8 A, B
      DIMENSION A(N,N), B(N,N)
      CALL COPY(A, B)
      CALL COPY(B, A)
      END
      SUBROUTINE COPY(X, Y)
      REAL*8 X, Y
      DIMENSION X(N,N), Y(N,N)
      DO J = 1, N
        DO I = 1, N
          Y(I,J) = X(I,J)
        ENDDO
      ENDDO
      END
";
    let source = cme::fortran::parse_with_params(src, &[("N", 48)]).unwrap();
    let inlined = Inliner::new().inline(&source).unwrap();
    let program = cme::ir::normalize(&inlined, &Default::default()).unwrap();
    assert_eq!(program.references().len(), 4);
    assert_eq!(program.total_accesses(), 4 * 48 * 48);

    for assoc in [1u32, 2] {
        let cache = CacheConfig::new(8 * 1024, 32, assoc).unwrap();
        let find = FindMisses::new(&program, cache).run();
        let sim = Simulator::new(cache).run(&program);
        assert_eq!(
            find.exact_misses(),
            Some(sim.total_misses()),
            "assoc {assoc}"
        );
    }
}

#[test]
fn all_three_kernels_beat_one_percent_error_when_sampled() {
    let cache = CacheConfig::new(8 * 1024, 32, 2).unwrap();
    for (name, program) in [
        ("hydro", cme::workloads::hydro(40, 40)),
        ("mgrid", cme::workloads::mgrid(16)),
        ("mmt", cme::workloads::mmt(32, 16, 8)),
    ] {
        let sim = Simulator::new(cache).run(&program).miss_ratio();
        let est = EstimateMisses::new(&program, cache, SamplingOptions::paper_default())
            .run()
            .miss_ratio();
        assert!(
            (est - sim).abs() < 0.01,
            "{name}: |{est:.4} - {sim:.4}| >= 1%"
        );
    }
}

#[test]
fn estimate_never_breaks_on_any_associativity_or_size() {
    let program = cme::workloads::mmt(16, 8, 4);
    for kb in [1u64, 2, 8, 64] {
        for assoc in [1u32, 2, 4, 8] {
            let cache = CacheConfig::new(kb * 1024, 64, assoc).unwrap();
            let r = EstimateMisses::new(&program, cache, SamplingOptions::paper_default())
                .run()
                .miss_ratio();
            assert!((0.0..=1.0).contains(&r), "{kb}KB {assoc}-way: {r}");
        }
    }
}

#[test]
fn whole_program_pipeline_with_stack_model() {
    // The Fig. 4 stack accesses flow through the entire pipeline.
    let src = cme::workloads::swim_like_source(16, 1);
    let inlined = cme::inline::Inliner::with_stack_model()
        .inline(&src)
        .unwrap();
    assert!(inlined.subroutines[0]
        .decls
        .iter()
        .any(|d| d.name == "STACK"));
    let program = cme::ir::normalize(&inlined, &Default::default()).unwrap();
    let cache = CacheConfig::new(4 * 1024, 32, 1).unwrap();
    let sim = Simulator::new(cache).run(&program);
    let est = EstimateMisses::new(&program, cache, SamplingOptions::paper_default()).run();
    assert_eq!(est.total_accesses(), sim.total_accesses());
    assert!((est.miss_ratio() - sim.miss_ratio()).abs() < 0.02);

    // Stack accesses add trace length compared to the plain pipeline.
    let plain = cme::workloads::swim_like(16, 1);
    assert!(program.total_accesses() > plain.total_accesses());
}

#[test]
fn baselines_trait_objects_sweep() {
    use cme::baselines::{
        CacheModel, ExactCmeModel, ProbabilisticModel, SampledCmeModel, SimulationModel,
    };
    let program = cme::workloads::hydro(24, 24);
    let cache = CacheConfig::new(4 * 1024, 32, 2).unwrap();
    let models: Vec<Box<dyn CacheModel>> = vec![
        Box::new(SimulationModel),
        Box::new(ExactCmeModel),
        Box::new(SampledCmeModel::default()),
        Box::new(ProbabilisticModel),
    ];
    let truth = models[0].miss_ratio(&program, cache);
    for m in &models {
        let r = m.miss_ratio(&program, cache);
        assert!((0.0..=1.0).contains(&r), "{}: {r}", m.name());
        // Every model is within 10 points of truth on this friendly kernel;
        // the CME ones much closer.
        assert!((r - truth).abs() < 0.10, "{}: {r} vs {truth}", m.name());
    }
    let exact = models[1].miss_ratio(&program, cache);
    assert!((exact - truth).abs() < 1e-12, "FindMisses exact on Hydro");
}

#[test]
fn pretty_printer_renders_normalised_workloads() {
    let program = cme::workloads::mmt(8, 4, 2);
    let text = cme::ir::pretty::render(&program);
    assert!(text.contains("PROGRAM MMT"));
    assert!(text.contains("DO I1"));
    // The sunk A(I,K) read is guarded (RA = A(I,K) under J = J2).
    assert!(text.contains("IF ("), "{text}");
}

#[test]
fn census_on_table2_suite_via_public_api() {
    let mut total = cme::inline::Census::default();
    for (_, program) in cme::workloads::table2_suite() {
        total = total.add(&cme::inline::census(&program));
    }
    assert_eq!(total.calls, 2604);
    assert_eq!(total.analysable_calls, 2251);
}

#[test]
fn common_blocks_share_storage_across_subroutines() {
    // The same computation written twice: with COMMON-based parameterless
    // calls, and with explicit arguments. Identical miss counts expected.
    let common_src = "
      PROGRAM MAINC
      REAL*8 U, V
      COMMON /FLD/ U, V
      DIMENSION U(N,N), V(N,N)
      CALL STEPA
      CALL STEPB
      END
      SUBROUTINE STEPA
      REAL*8 U, V
      COMMON /FLD/ U, V
      DIMENSION U(N,N), V(N,N)
      DO J = 2, N-1
        DO I = 2, N-1
          V(I,J) = U(I-1,J) + U(I+1,J)
        ENDDO
      ENDDO
      END
      SUBROUTINE STEPB
      REAL*8 U, V
      COMMON /FLD/ U, V
      DIMENSION U(N,N), V(N,N)
      DO J = 2, N-1
        DO I = 2, N-1
          U(I,J) = V(I,J-1) + V(I,J+1)
        ENDDO
      ENDDO
      END
";
    let args_src = "
      PROGRAM MAINA
      REAL*8 U, V
      DIMENSION U(N,N), V(N,N)
      CALL STEPA(U, V)
      CALL STEPB(U, V)
      END
      SUBROUTINE STEPA(U, V)
      REAL*8 U, V
      DIMENSION U(N,N), V(N,N)
      DO J = 2, N-1
        DO I = 2, N-1
          V(I,J) = U(I-1,J) + U(I+1,J)
        ENDDO
      ENDDO
      END
      SUBROUTINE STEPB(U, V)
      REAL*8 U, V
      DIMENSION U(N,N), V(N,N)
      DO J = 2, N-1
        DO I = 2, N-1
          U(I,J) = V(I,J-1) + V(I,J+1)
        ENDDO
      ENDDO
      END
";
    let build = |src: &str| {
        let source = cme::fortran::parse_with_params(src, &[("N", 40)]).unwrap();
        let inlined = Inliner::new().inline(&source).unwrap();
        cme::ir::normalize(&inlined, &Default::default()).unwrap()
    };
    let p_common = build(common_src);
    let p_args = build(args_src);
    // Parameterless calls: census shows zero actuals, like the paper's Swim.
    let census =
        cme::inline::census(&cme::fortran::parse_with_params(common_src, &[("N", 40)]).unwrap());
    assert_eq!(census.total_actuals(), 0);
    assert_eq!(census.calls, 2);
    assert_eq!(census.analysable_calls, 2);

    for assoc in [1u32, 2] {
        let cache = CacheConfig::new(4 * 1024, 32, assoc).unwrap();
        let sim_c = Simulator::new(cache).run(&p_common);
        let sim_a = Simulator::new(cache).run(&p_args);
        assert_eq!(sim_c.total_accesses(), sim_a.total_accesses());
        assert_eq!(sim_c.total_misses(), sim_a.total_misses(), "assoc {assoc}");
        // And the analytical model agrees with the simulator on both.
        let find = FindMisses::new(&p_common, cache).run();
        assert_eq!(find.exact_misses(), Some(sim_c.total_misses()));
    }
}

#[test]
fn common_layout_is_contiguous_in_member_order() {
    let src = "
      PROGRAM M
      REAL*8 A, B, C
      COMMON /BLK/ A, B, C
      DIMENSION A(8), B(8), C(8)
      DO I = 1, 8
        C(I) = A(I) + B(I)
      ENDDO
      END
";
    let source = cme::fortran::parse_with_params(src, &[]).unwrap();
    let inlined = Inliner::new().inline(&source).unwrap();
    let p = cme::ir::normalize(&inlined, &Default::default()).unwrap();
    let base = |n: &str| {
        let id = p.arrays().iter().position(|a| a.name == n).unwrap();
        p.base_address(id)
    };
    assert_eq!(base("BLK.B"), base("BLK.A") + 64);
    assert_eq!(base("BLK.C"), base("BLK.B") + 64);
}

#[test]
fn common_mismatch_is_rejected() {
    let src = "
      PROGRAM M
      REAL*8 A
      COMMON /BLK/ A
      DIMENSION A(8)
      CALL S
      END
      SUBROUTINE S
      REAL*8 A
      COMMON /BLK/ A
      DIMENSION A(16)
      DO I = 1, 16
        A(I) = 0.0D0
      ENDDO
      END
";
    let source = cme::fortran::parse_with_params(src, &[]).unwrap();
    let err = Inliner::new().inline(&source).unwrap_err();
    assert!(err.to_string().contains("COMMON /BLK/"), "{err}");
}
