//! The `cme` binary's exit-code contract: 0 success, 1 usage, 2 runtime.
//! Runtime failures (unreachable daemon, dead connection, unusable data)
//! must print a one-line diagnostic, never a raw panic.

use std::process::Command;

fn cme(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_cme"))
        .args(args)
        .output()
        .expect("spawn cme")
}

fn stderr(out: &std::process::Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn usage_errors_exit_1() {
    assert_eq!(cme(&[]).status.code(), Some(1), "no command");
    assert_eq!(cme(&["frobnicate"]).status.code(), Some(1), "unknown verb");
    assert_eq!(
        cme(&["query", "--bogus-flag"]).status.code(),
        Some(1),
        "unknown flag"
    );
    assert_eq!(
        cme(&["serve", "--chaos", "not-a-spec"]).status.code(),
        Some(1),
        "malformed chaos spec"
    );
    assert_eq!(cme(&["help"]).status.code(), Some(0));
}

#[test]
fn unreachable_daemon_exits_2_with_diagnostic() {
    // Port 1 is essentially never listening.
    for verb in ["ping", "stats", "compact", "shutdown"] {
        let out = cme(&[verb, "--addr", "127.0.0.1:1"]);
        assert_eq!(out.status.code(), Some(2), "{verb}");
        let err = stderr(&out);
        assert!(
            err.contains("cannot connect to 127.0.0.1:1"),
            "{verb}: {err}"
        );
        assert_eq!(err.lines().count(), 1, "{verb}: one-line diagnostic");
    }
    let out = cme(&["query", "--addr", "127.0.0.1:1", "--workload", "mmt"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("cannot connect"), "{}", stderr(&out));
}

#[test]
fn trace_sim_bad_inputs_exit_2_with_path() {
    let out = cme(&["trace", "sim", "--in", "/nonexistent/t.cmet"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("/nonexistent/t.cmet"),
        "{}",
        stderr(&out)
    );

    // A zero-access trace must be a hard error naming the file, not a
    // replay of nothing with a perfect miss ratio.
    let empty = std::env::temp_dir().join(format!("cme-cli-empty-{}.cmet", std::process::id()));
    std::fs::write(&empty, b"").unwrap();
    let out = cme(&[
        "trace",
        "sim",
        "--in",
        empty.to_str().unwrap(),
        "--geometry",
        "2K:2:32",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("no accesses"), "{err}");
    assert!(err.contains(empty.to_str().unwrap()), "{err}");
    let _ = std::fs::remove_file(&empty);
}

#[test]
fn trace_gen_and_sim_roundtrip_exits_0() {
    let path = std::env::temp_dir().join(format!("cme-cli-rt-{}.cmet", std::process::id()));
    let gen = cme(&[
        "trace",
        "gen",
        "--workload",
        "mmt",
        "--n",
        "8",
        "--out",
        path.to_str().unwrap(),
        "--geometry",
        "2K:2:32",
    ]);
    assert_eq!(gen.status.code(), Some(0), "{}", stderr(&gen));
    let sim = cme(&["trace", "sim", "--in", path.to_str().unwrap()]);
    assert_eq!(sim.status.code(), Some(0), "{}", stderr(&sim));
    let _ = std::fs::remove_file(&path);
}
